"""A polymorphic die-stacked DRAM tier below the LLC.

One component, three personalities (:class:`TierConfig` selects):

* **cache** — a tag-in-DRAM set-associative cache of oriented lines.
  Following TDRAM (Babaie et al.), tags live in the same DRAM row as
  their data, so a single row activation resolves the tag check *and*
  delivers the data: a hit costs exactly one stacked-DRAM access, and
  a miss pays the same probe before fetching below.
* **flat** — an addressable fast region covering the lowest
  ``flat_bytes`` of the tile space (the hottest range under the
  simulator's dense bottom-up layouts); lines outside it pass through
  to the MDA memory untouched.
* **hybrid** — both at once: a configurable share of the capacity
  runs as cache ways over the non-flat remainder of the address
  space.

The tier speaks the inter-level protocol of
:mod:`repro.cache.base` — ``fetch_line`` / ``writeback_line`` — and
sits where the raw :class:`~repro.cache.base.MemoryPort` used to be:
the LLC (and the kernel/vector replay chains, which bottom out at
``hierarchy.port``) call it in program order on every replay path, so
object, packed, kernel, and vector runs stay bit-identical by
construction.

Slow-side policy (Meza et al., "row-buffer-locality-aware"): before a
cache-mode miss goes to the MDA memory, the tier probes the would-be
buffer state of the target bank.  An access the slow side would have
served from an open buffer is *not* worth caching — MDA serves it
almost as fast as the tier would — so RBLA bypasses the install.  A
row-conflicting access bumps its region's conflict counter and starts
installing once the region has proven itself conflict-prone
(``rbla_threshold``).  This couples the tier's benefit to the MDA
layout/orientation machinery the paper sweeps: workloads whose miss
stream is buffer-friendly keep the tier clean, perpendicular-heavy
streams migrate into it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..common.config import TierConfig
from ..common.stats import StatRegistry
from ..common.types import (
    AccessWidth,
    LINE_BYTES,
    LINES_PER_TILE,
    TILE_BYTES,
)


class _StackBank:
    """Open-row and busy-horizon state of one stacked-DRAM bank."""

    __slots__ = ("open_row", "busy_until")

    def __init__(self) -> None:
        self.open_row = -1
        self.busy_until = 0


class DieStackedTier:
    """The tier model; plugs in below the LLC via the line protocol."""

    def __init__(self, config: TierConfig, stats: StatRegistry,
                 memory, port, level_index: int) -> None:
        """``memory`` is the :class:`MdaMemory` (for locality probes),
        ``port`` the :class:`MemoryPort` misses and victim writebacks
        go through, ``level_index`` the 1-based level reported for
        tier hits (one below the LLC's)."""
        self._cfg = config
        self._memory = memory
        self._port = port
        self._level = level_index

        # -- geometry -----------------------------------------------------
        self._flat_tiles = config.flat_bytes // TILE_BYTES
        cache_lines = config.cache_bytes // LINE_BYTES
        self._assoc = config.assoc
        self._num_sets = cache_lines // config.assoc
        # line_id -> dirty_mask per set, insertion-ordered (dict order
        # is the LRU stack: oldest first, reinsert-on-touch).
        self._sets: List[Dict[int, int]] = [
            dict() for _ in range(self._num_sets)]

        # Row mapping: cache sets fill rows first, the flat region
        # occupies the rows after them, so hybrid splits never alias.
        self._lines_per_row = config.row_bytes // LINE_BYTES
        self._sets_per_row = max(
            1, config.row_bytes // (config.assoc * LINE_BYTES))
        self._flat_row_base = -(-self._num_sets // self._sets_per_row) \
            if self._num_sets else 0
        self._banks = [_StackBank() for _ in range(config.banks)]
        self._nbanks = config.banks
        self._activate = config.activate_cycles
        self._access = config.access_cycles
        self._write = config.write_cycles

        # -- RBLA state ---------------------------------------------------
        self._rbla = config.rbla
        self._rbla_threshold = config.rbla_threshold
        self._conflicts: Dict[Tuple[int, int, int], int] = {}

        # -- counters (group exists only when the tier does, so a
        #    disabled tier leaves stats.flat() untouched) ------------------
        grp = stats.group("tier")
        self._stats = grp
        grp.set("mode_cache", 1 if self._num_sets else 0)
        grp.set("mode_flat", 1 if self._flat_tiles else 0)
        self._c_fetches = grp.counter("fetches")
        self._c_hits = grp.counter("hits")
        self._c_misses = grp.counter("misses")
        self._c_flat_hits = grp.counter("flat_hits")
        self._c_fills = grp.counter("fills")
        self._c_writebacks_in = grp.counter("writebacks_absorbed")
        self._c_writebacks_through = grp.counter("writebacks_through")
        self._c_victim_writebacks = grp.counter("victim_writebacks")
        self._c_row_open_hits = grp.counter("row_open_hits")
        self._c_row_conflicts = grp.counter("row_conflicts")
        self._c_slow_open_hits = grp.counter("slow_open_hits")
        self._c_slow_conflicts = grp.counter("slow_row_conflicts")
        self._c_rbla_bypasses = grp.counter("rbla_bypasses")
        self._c_rbla_installs = grp.counter("rbla_installs")
        self._c_service_cycles = grp.counter("service_cycles")

    @property
    def config(self) -> TierConfig:
        return self._cfg

    @property
    def level_index(self) -> int:
        return self._level

    @property
    def stats(self):
        return self._stats

    # -- inter-level protocol --------------------------------------------

    def fetch_line(self, line_id: int, now: int,
                   width: AccessWidth) -> Tuple[int, int]:
        self._c_fetches.value += 1
        if (line_id >> 4) < self._flat_tiles:
            done = self._bank_access(self._flat_row(line_id), now,
                                     is_write=False)
            self._c_flat_hits.value += 1
            self._c_service_cycles.value += done - now
            return done, self._level
        if self._num_sets:
            return self._cache_fetch(line_id, now, width)
        return self._port.fetch_line(line_id, now, width)

    def writeback_line(self, line_id: int, dirty_mask: int,
                       now: int) -> int:
        if (line_id >> 4) < self._flat_tiles:
            self._c_writebacks_in.value += 1
            return self._bank_access(self._flat_row(line_id), now,
                                     is_write=True)
        if self._num_sets:
            return self._cache_writeback(line_id, dirty_mask, now)
        self._c_writebacks_through.value += 1
        return self._port.writeback_line(line_id, dirty_mask, now)

    def flush(self, now: int) -> None:
        """Drain every dirty cached line to the MDA memory.

        Lines drain in ascending id order per set (the deterministic
        order the object-path levels also use); the flat region *is*
        the line's home, so it has nothing to drain.
        """
        for lines in self._sets:
            for line_id in sorted(lines):
                mask = lines[line_id]
                if mask:
                    self._c_victim_writebacks.value += 1
                    self._port.writeback_line(line_id, mask, now)
            lines.clear()

    # -- cache mode -------------------------------------------------------

    def _cache_fetch(self, line_id: int, now: int,
                     width: AccessWidth) -> Tuple[int, int]:
        set_index = line_id % self._num_sets
        lines = self._sets[set_index]
        row = set_index // self._sets_per_row
        # TDRAM folded probe: the activation+access below resolves the
        # tag and, on a hit, delivers the data — no separate tag cost.
        probe_done = self._bank_access(row, now, is_write=False)
        mask = lines.pop(line_id, None)
        if mask is not None:
            lines[line_id] = mask  # MRU position
            self._c_hits.value += 1
            self._c_service_cycles.value += probe_done - now
            return probe_done, self._level
        self._c_misses.value += 1
        # Probe the slow side's buffer state *before* the read opens a
        # buffer there: the RBLA decision must see what the access is
        # about to encounter, not what it leaves behind.
        region, slow_hit = self._memory.buffer_state(line_id)
        if slow_hit:
            self._c_slow_open_hits.value += 1
        else:
            self._c_slow_conflicts.value += 1
        completion, _ = self._port.fetch_line(line_id, probe_done,
                                              width)
        if self._should_install(region, slow_hit):
            self._install(lines, line_id, row, completion)
        return completion, 0

    def _should_install(self, region: Tuple[int, int, int],
                        slow_hit: bool) -> bool:
        if not self._rbla:
            return True
        if slow_hit:
            self._c_rbla_bypasses.value += 1
            return False
        count = self._conflicts.get(region, 0) + 1
        if count >= self._rbla_threshold:
            self._conflicts[region] = self._rbla_threshold
            self._c_rbla_installs.value += 1
            return True
        self._conflicts[region] = count
        self._c_rbla_bypasses.value += 1
        return False

    def _install(self, lines: Dict[int, int], line_id: int, row: int,
                 at: int) -> None:
        self._c_fills.value += 1
        if len(lines) >= self._assoc:
            victim_id = next(iter(lines))
            victim_mask = lines.pop(victim_id)
            if victim_mask:
                self._c_victim_writebacks.value += 1
                self._port.writeback_line(victim_id, victim_mask, at)
        lines[line_id] = 0
        # The fill write occupies the bank (off the critical path; the
        # requester already has its completion from the MDA memory).
        self._bank_access(row, at, is_write=True)

    def _cache_writeback(self, line_id: int, dirty_mask: int,
                         now: int) -> int:
        set_index = line_id % self._num_sets
        lines = self._sets[set_index]
        mask = lines.pop(line_id, None)
        row = set_index // self._sets_per_row
        if mask is not None:
            # Absorbed: tag+data write in one activation.
            lines[line_id] = mask | dirty_mask
            self._c_writebacks_in.value += 1
            return self._bank_access(row, now, is_write=True)
        # Write-no-allocate: the tag probe discovers the absence, then
        # the line passes through to the MDA write path.
        probe_done = self._bank_access(row, now, is_write=False)
        self._c_writebacks_through.value += 1
        return self._port.writeback_line(line_id, dirty_mask,
                                         probe_done)

    # -- stacked-DRAM timing ----------------------------------------------

    def _flat_row(self, line_id: int) -> int:
        """Row key of a flat-region line (both orientations of a tile
        share rows, so perpendicular reuse still row-hits)."""
        flat_line = (line_id >> 4) * LINES_PER_TILE + (line_id & 7)
        return self._flat_row_base + flat_line // self._lines_per_row

    def _bank_access(self, row: int, at: int, is_write: bool) -> int:
        """One stacked-DRAM access; returns data-ready time."""
        bank = self._banks[row % self._nbanks]
        start = at if at > bank.busy_until else bank.busy_until
        if bank.open_row == row:
            self._c_row_open_hits.value += 1
            cost = 0
        else:
            bank.open_row = row
            self._c_row_conflicts.value += 1
            cost = self._activate
        cost += self._write if is_write else self._access
        done = start + cost
        bank.busy_until = done
        return done
