"""Admission control, request coalescing, and batch dispatch.

:class:`SimulationService` is the bridge between the asyncio server
and the synchronous experiment engine.  Every request takes the same
read path the engine uses offline, now three-tiered and shared across
clients:

1. **in-process memo** — the :class:`ExperimentRunner` memo (and its
   persistent ``.runcache`` behind it) answers repeated configs without
   touching the queue at all;
2. **coalescing** — a request identical to one already queued or
   simulating attaches to the in-flight future instead of enqueueing a
   duplicate (the ``coalesced_total`` metric counts these);
3. **batch dispatch** — distinct new requests are admitted to a
   *bounded* queue, collected for a short batching window, deduplicated
   into a :class:`RunKey` plan, and supervised through the existing
   :class:`Supervisor` (journal, retries, timeouts, fault taxonomy all
   carry over) on a worker thread.

Admission is explicit backpressure, never blocking: a full queue
raises :class:`AdmissionRejected` (HTTP 429) with a ``Retry-After``
estimate derived from the observed batch service rate, and a draining
server raises :class:`ServiceDraining` (HTTP 503).  The queue can
therefore never deadlock a client — every submit either completes,
coalesces, or is rejected immediately.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..common.errors import (
    AdmissionRejected,
    ServiceDraining,
    SimulationFailed,
)
from ..experiments.runner import ExperimentRunner, RunKey, cache_key
from ..experiments.supervisor import Supervisor
from .coalesce import ClaimBoard
from .metrics import MICROS, MetricsRegistry


class ServiceMetrics:
    """The service's metric families on one registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 service: Optional["SimulationService"] = None) -> None:
        self.registry = registry or MetricsRegistry()
        reg = self.registry
        self.requests = reg.counter(
            "requests_total",
            "HTTP requests handled, by endpoint and status code")
        self.queue_depth = reg.gauge(
            "queue_depth", "Requests admitted and waiting for dispatch",
            fn=(lambda: service.queue_depth) if service else None)
        self.inflight = reg.gauge(
            "inflight", "Distinct configs queued or simulating",
            fn=(lambda: service.inflight) if service else None)
        self.rejected = reg.counter(
            "rejected_total",
            "Requests rejected by admission control, by reason")
        self.coalesced = reg.counter(
            "coalesced_total",
            "Requests coalesced onto an identical in-flight config")
        self.cross_coalesced = reg.counter(
            "cross_coalesced_total",
            "Requests resolved by waiting on another worker's "
            "in-flight simulation (shared-cache claim board)")
        self.cache_hits = reg.counter(
            "cache_hits_total",
            "Requests answered from the result cache, by tier")
        self.simulated = reg.counter(
            "simulated_total", "Requests answered by a fresh simulation")
        self.sim_failed = reg.counter(
            "sim_failed_total",
            "Requests whose simulation failed permanently")
        self.batches = reg.counter(
            "batches_total", "Simulation batches dispatched")
        self.batch_size = reg.histogram(
            "batch_size", "Distinct configs per dispatched batch",
            max_buckets=14)
        self.queue_wait = reg.histogram(
            "stage_queue_wait_seconds",
            "Admission-to-dispatch wait per batched request",
            scale=1.0 / MICROS)
        self.simulate = reg.histogram(
            "stage_simulate_seconds",
            "Supervised batch execution wall time",
            scale=1.0 / MICROS)
        self.total = reg.histogram(
            "stage_total_seconds",
            "Submit-to-response wall time per request",
            scale=1.0 / MICROS)
        self.sim_cycles = reg.histogram(
            "sim_request_latency_cycles",
            "Per-request latency cycles aggregated from the replay "
            "paths' lat_hist_b* counters across simulated runs",
            max_buckets=64)
        self.cache_hit_ratio = reg.gauge(
            "cache_hit_ratio",
            "Fraction of answered requests served without simulating",
            fn=self._hit_ratio)

    def _hit_ratio(self) -> float:
        hits = (self.cache_hits.total() + self.coalesced.total()
                + self.cross_coalesced.total())
        total = hits + self.simulated.total()
        return hits / total if total else 0.0

    def bind_claim_board(self, board: ClaimBoard) -> None:
        """Expose a claim board's lease accounting as live gauges."""
        reg = self.registry
        reg.gauge("claims_granted",
                  "In-flight claims this worker won on the shared "
                  "claim board", fn=lambda: board.granted)
        reg.gauge("claims_denied",
                  "Claims lost to another worker's fresh lease",
                  fn=lambda: board.denied)
        reg.gauge("claim_takeovers",
                  "Stale leases taken over from a dead or wedged "
                  "worker", fn=lambda: board.takeovers)

    def observe_sim_histogram(self, flat_stats: Dict[str, int]) -> None:
        """Fold one run's ``cpu.lat_hist_b*`` counters into
        :attr:`sim_cycles`."""
        counts: Dict[int, int] = {}
        for key, value in flat_stats.items():
            if value and key.startswith("cpu.lat_hist_b"):
                counts[int(key[-2:])] = value
        if counts:
            self.sim_cycles.observe_bucket_counts(counts)


@dataclass
class _Job:
    """One admitted (non-coalesced) request awaiting dispatch."""

    key: RunKey
    future: "asyncio.Future[Any]"
    ck: str = ""
    enqueued: float = field(default_factory=time.monotonic)


class SimulationService:
    """Coalescing, batching front-end over runner + supervisor.

    Args:
        runner: the engine's memo + persistent cache (tiers 1-2).
        supervisor: dispatches batches; construct it with
            ``handle_signals=False`` (the server owns signals).
        max_pending: admission-queue bound; submits beyond it are
            rejected with 429 backpressure.
        max_batch: largest RunKey plan per supervised batch.
        batch_window: seconds the dispatcher waits after the first
            queued request to let concurrent requests join the batch.
        claim_board: cross-worker in-flight claims over the shared
            run cache (see :mod:`repro.service.coalesce`); ``None``
            (single-process serving) coalesces in-memory only.
        cross_poll: seconds between shared-cache polls while waiting
            on another worker's claimed simulation.
    """

    def __init__(self, runner: ExperimentRunner,
                 supervisor: Supervisor,
                 max_pending: int = 256,
                 max_batch: int = 32,
                 batch_window: float = 0.02,
                 metrics: Optional[ServiceMetrics] = None,
                 claim_board: Optional[ClaimBoard] = None,
                 cross_poll: float = 0.1) -> None:
        self._runner = runner
        self._supervisor = supervisor
        self._max_pending = max(1, int(max_pending))
        self._max_batch = max(1, int(max_batch))
        self._batch_window = max(0.0, float(batch_window))
        self.metrics = metrics or ServiceMetrics()
        # Wire the live gauges to this instance (a ServiceMetrics made
        # without a service has no callbacks yet).
        self.metrics.queue_depth._fn = lambda: self.queue_depth
        self.metrics.inflight._fn = lambda: self.inflight
        self._claims = claim_board
        self._cross_poll = max(0.01, float(cross_poll))
        if claim_board is not None:
            self.metrics.bind_claim_board(claim_board)
        self._pending: List[_Job] = []
        self._inflight: Dict[RunKey, "asyncio.Future[Any]"] = {}
        self._wake = asyncio.Event()
        self._draining = False
        self._dispatcher: Optional["asyncio.Task[None]"] = None
        self._avg_batch_seconds = 1.0
        self._batches_done = 0

    # -- introspection -------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def runner(self) -> ExperimentRunner:
        return self._runner

    def retry_after(self) -> float:
        """Suggested client backoff, from the observed service rate."""
        batches_queued = ((self.queue_depth + self._max_batch - 1)
                          // self._max_batch) or 1
        return round(max(1.0, batches_queued * self._avg_batch_seconds),
                     1)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = asyncio.create_task(
                self._dispatch_loop(), name="repro-service-dispatch")

    async def drain(self) -> None:
        """Stop admitting, finish all in-flight work, flush the journal.

        Idempotent; returns when the queue is empty and the dispatcher
        has exited.
        """
        self._draining = True
        self._wake.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        journal = self._supervisor.journal
        if journal is not None:
            journal.record_event("service_drained")
            journal.close()

    # -- the read/submit path ------------------------------------------------

    async def submit(self, key: RunKey) -> Tuple[Any, str]:
        """Resolve one validated request to ``(RunResult, source)``.

        ``source`` is ``"cache"`` (tier 1/2 hit), ``"coalesced"``
        (attached to an identical in-flight config — in this process
        or, via the claim board, in a sibling worker), or
        ``"simulated"``.  Raises :class:`ServiceDraining`,
        :class:`AdmissionRejected`, or :class:`SimulationFailed`.
        """
        started = time.monotonic()
        try:
            # The loop re-runs only when a cross-worker wait ends
            # without a result (stale claim, dead sibling): the state
            # checks must then be re-evaluated from the top.
            while True:
                if self._draining:
                    self.metrics.rejected.inc(reason="draining")
                    raise ServiceDraining(
                        retry_after=self.retry_after())
                before = self._runner.cache_info()
                result = self._runner.lookup(key)
                if result is not None:
                    after = self._runner.cache_info()
                    tier = "memo" \
                        if after.memory_hits > before.memory_hits \
                        else "disk"
                    self.metrics.cache_hits.inc(tier=tier)
                    return result, "cache"
                existing = self._inflight.get(key)
                if existing is not None:
                    self.metrics.coalesced.inc()
                    result = await asyncio.shield(existing)
                    return result, "coalesced"
                if len(self._pending) >= self._max_pending:
                    self.metrics.rejected.inc(reason="queue_full")
                    raise AdmissionRejected(
                        f"admission queue full "
                        f"({self._max_pending} pending)",
                        retry_after=self.retry_after())
                ck = cache_key(key)
                if self._claims is not None \
                        and not self._claims.claim(ck):
                    result = await self._await_sibling(key, ck)
                    if result is not None:
                        self.metrics.cross_coalesced.inc()
                        return result, "coalesced"
                    continue
                future: "asyncio.Future[Any]" = \
                    asyncio.get_running_loop().create_future()
                self._inflight[key] = future
                self._pending.append(_Job(key, future, ck))
                self._wake.set()
                result = await asyncio.shield(future)
                self.metrics.simulated.inc()
                return result, "simulated"
        finally:
            self.metrics.total.observe(
                (time.monotonic() - started) * MICROS)

    async def _await_sibling(self, key: RunKey,
                             ck: str) -> Optional[Any]:
        """Wait for a sibling worker's claimed simulation of ``key``.

        Polls the shared run cache until the result lands, the
        sibling's lease goes stale (it died — the caller takes over),
        or this worker starts draining.  Returns the result or
        ``None`` when the caller should re-evaluate from scratch.
        """
        assert self._claims is not None
        while not self._draining:
            await asyncio.sleep(self._cross_poll)
            result = self._runner.lookup(key)
            if result is not None:
                return result
            if not self._claims.claimed_elsewhere(ck):
                # Lease released or stale.  One last cache look closes
                # the release-after-store race; otherwise take over.
                return self._runner.lookup(key)
        return None

    # -- dispatcher ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            if not self._pending:
                if self._draining:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            # Batching window: let concurrent requests pile on, unless
            # the batch is already full or the server is draining.
            if (self._batch_window > 0 and not self._draining
                    and len(self._pending) < self._max_batch):
                await asyncio.sleep(self._batch_window)
            batch = self._pending[:self._max_batch]
            del self._pending[:len(batch)]
            await self._run_batch(batch)

    async def _run_batch(self, batch: List[_Job]) -> None:
        now = time.monotonic()
        self.metrics.batches.inc()
        self.metrics.batch_size.observe(len(batch))
        for job in batch:
            self.metrics.queue_wait.observe(
                (now - job.enqueued) * MICROS)
        keys = [job.key for job in batch]
        if self._claims is not None:
            # Extend the leases for the whole supervised batch: the
            # claims were taken at admission, and a long queue wait
            # must not let a sibling conclude this worker died.
            for job in batch:
                self._claims.refresh(job.ck)
        started = time.monotonic()
        try:
            report = await asyncio.to_thread(
                self._supervisor.supervise, keys, strict=False)
            errors = {ck_key: message
                      for ck_key, message in report.failed}
        except Exception as exc:  # noqa: BLE001 - fail the whole batch
            report = None
            errors = {key: f"{type(exc).__name__}: {exc}"
                      for key in keys}
        self.metrics.simulate.observe(
            (time.monotonic() - started) * MICROS)
        seconds = max(time.monotonic() - started, 1e-4)
        self._avg_batch_seconds += \
            0.4 * (seconds - self._avg_batch_seconds)
        self._batches_done += 1
        for job in batch:
            future = self._inflight.pop(job.key, None)
            result = self._runner.lookup(job.key) \
                if job.key not in errors else None
            if self._claims is not None:
                # Release only after the result is in the shared
                # cache, so a sibling's next poll finds it.
                self._claims.release(job.ck)
            if future is None or future.done():
                continue
            if result is not None:
                self.metrics.observe_sim_histogram(result.stats.flat())
                future.set_result(result)
            else:
                message = errors.get(
                    job.key, "simulation produced no result")
                self.metrics.sim_failed.inc()
                future.set_exception(SimulationFailed(message))
