"""Clients for the simulation service (sync and async, stdlib only).

:class:`ServiceClient` wraps :mod:`http.client` for scripts and tests;
:class:`AsyncServiceClient` speaks the same protocol over raw asyncio
streams for high-concurrency callers.  Both share one retry policy
(:class:`RetryConfig`): 429/503 responses and connection-level errors
are retried with exponential backoff, and when the server includes a
``Retry-After`` header (or ``retry_after`` JSON field) that value wins
over the computed delay — the server's estimate reflects the actual
queue, the client's formula does not.

400 and 500 responses are never retried: validation failures and
permanently failed simulations would fail identically again.  They
surface as :class:`ValidationFailed` / :class:`SimulationFailed`; a
retry budget exhausted on backpressure surfaces as the last
:class:`AdmissionRejected` / :class:`ServiceDraining`.

Computed backoff delays are *full-jitter*: the sleep is drawn
uniformly from ``[0, ceiling)`` where the ceiling grows exponentially
per attempt.  Without jitter, N clients rejected by the same full
queue all retry at the same instant and re-collide forever; with full
jitter their retries spread over the whole window.  A server-provided
``Retry-After`` is used verbatim (capped, no jitter) — it reflects the
actual queue and already differs per response.

Both clients also accept a :class:`CircuitBreaker`.  After
``threshold`` consecutive connection-level or 5xx failures the breaker
*opens* and requests fail fast locally (no socket traffic) for a
cooldown; then a single *half-open* probe is let through — success
closes the breaker, failure re-opens it with a doubled (capped)
cooldown.  This keeps a thundering herd of retrying clients off a
worker fleet that is mid-restart, which is exactly when it can least
afford accept-queue pressure.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..common.errors import (
    AdmissionRejected,
    CircuitOpen,
    ServiceDraining,
    ServiceError,
    SimulationFailed,
    ValidationFailed,
)


@dataclass(frozen=True)
class RetryConfig:
    """Backoff policy for retryable (429/503/connection) failures."""

    max_retries: int = 5
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_cap: float = 10.0
    #: Draw computed delays uniformly from ``[0, ceiling)`` (full
    #: jitter).  Disable only in tests that assert exact delays.
    jitter: bool = True

    def delay(self, attempt: int,
              retry_after: Optional[float] = None,
              rng: Callable[[], float] = random.random) -> float:
        """Seconds to sleep before retry ``attempt`` (0-based).

        A positive ``retry_after`` (the server's own estimate) wins
        over the computed ceiling and is never jittered; ``rng`` is
        injectable for deterministic tests.
        """
        if retry_after is not None and retry_after > 0:
            return min(float(retry_after), self.backoff_cap)
        ceiling = min(
            self.backoff_base * self.backoff_factor ** attempt,
            self.backoff_cap)
        if not self.jitter:
            return ceiling
        return ceiling * rng()


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed/open/half-open).

    State machine:

    * **closed** — requests flow; ``threshold`` *consecutive* failures
      (any success resets the streak) trip it open.
    * **open** — :meth:`allow` returns False until ``cooldown``
      elapses; callers should fail fast or sleep :meth:`retry_after`.
    * **half-open** — after the cooldown exactly one probe is let
      through.  Success closes the breaker and resets the cooldown;
      failure re-opens it with the cooldown doubled up to
      ``cooldown_cap``.

    Failures are connection-level errors and 5xx responses.  Any
    response the server actually produced below 500 — including a 429
    rejection — counts as success: backpressure means the service is
    alive, which is the one thing a breaker measures.

    The breaker is not thread-safe; share one per client, not across
    threads.  ``clock`` is injectable for tests.
    """

    def __init__(self, threshold: int = 5, cooldown: float = 1.0,
                 cooldown_cap: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self._threshold = threshold
        self._base_cooldown = float(cooldown)
        self._cooldown = float(cooldown)
        self._cooldown_cap = float(cooldown_cap)
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        #: Times the breaker tripped open (monitoring hook).
        self.opened_total = 0

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self._cooldown:
            return "half-open"
        return "open"

    def retry_after(self) -> float:
        """Seconds until the next half-open probe is allowed."""
        if self._opened_at is None:
            return 0.0
        remaining = self._cooldown - (self._clock() - self._opened_at)
        return max(0.0, remaining)

    def allow(self) -> bool:
        """May a request be sent now?  Reserves the half-open probe."""
        state = self.state
        if state == "closed":
            return True
        if state == "open":
            return False
        if self._probing:
            return False  # another in-flight request holds the probe
        self._probing = True
        return True

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False
        self._cooldown = self._base_cooldown

    def record_failure(self) -> None:
        if self._probing or self.state == "half-open":
            # Failed probe: re-open with a doubled (capped) cooldown.
            self._probing = False
            self._cooldown = min(self._cooldown * 2.0,
                                 self._cooldown_cap)
            self._opened_at = self._clock()
            self.opened_total += 1
            return
        self._failures += 1
        if self._opened_at is None \
                and self._failures >= self._threshold:
            self._opened_at = self._clock()
            self.opened_total += 1


def _error_for(status: int, payload: Any,
               headers: Dict[str, str]) -> ServiceError:
    message = payload.get("error", f"HTTP {status}") \
        if isinstance(payload, dict) else f"HTTP {status}"
    retry_after = None
    header = headers.get("retry-after")
    if header is not None:
        try:
            retry_after = float(header)
        except ValueError:
            retry_after = None
    if retry_after is None and isinstance(payload, dict):
        retry_after = payload.get("retry_after")
    if status == 400:
        return ValidationFailed(message)
    if status == 429:
        return AdmissionRejected(message, retry_after=retry_after or 1.0)
    if status == 503:
        return ServiceDraining(message, retry_after=retry_after or 5.0)
    return SimulationFailed(message)


def _retryable(exc: ServiceError) -> Tuple[bool, Optional[float]]:
    if isinstance(exc, (AdmissionRejected, ServiceDraining)):
        return True, exc.retry_after
    return False, None


class ServiceClient:
    """Blocking client over :mod:`http.client`.

    One client holds one keep-alive connection; it reconnects
    transparently after connection-level errors.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8371,
                 retry: Optional[RetryConfig] = None,
                 timeout: float = 300.0,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self._host = host
        self._port = port
        self._retry = retry or RetryConfig()
        self._timeout = timeout
        self._breaker = breaker
        self._conn: Optional[http.client.HTTPConnection] = None

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- endpoints -----------------------------------------------------------

    def simulate(self, design: str, workload: str, **fields: Any
                 ) -> Dict[str, Any]:
        """POST one point to ``/simulate`` and return the result body.

        ``fields`` are the optional request fields (``size``,
        ``llc_mb``, ``resident``, ``memory``, ``sample_every``,
        ``overrides``, ``stats``).
        """
        body = {"design": design, "workload": workload, **fields}
        return self.request("POST", "/simulate", body)

    def simulate_batch(self, points: List[Dict[str, Any]]
                       ) -> List[Dict[str, Any]]:
        """POST a list of points to ``/batch``."""
        return self.request("POST", "/batch", points)

    def healthz(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def metrics(self) -> str:
        return self.request("GET", "/metrics", raw=True)

    # -- transport -----------------------------------------------------------

    def request(self, method: str, path: str,
                body: Any = None, raw: bool = False) -> Any:
        last_error: Optional[Exception] = None
        for attempt in range(self._retry.max_retries + 1):
            if self._breaker is not None \
                    and not self._breaker.allow():
                pause = self._breaker.retry_after()
                last_error = CircuitOpen(retry_after=max(pause, 0.05))
                if attempt < self._retry.max_retries:
                    time.sleep(max(pause, 0.05))
                continue
            try:
                status, headers, payload = self._once(
                    method, path, body, raw)
            except (ConnectionError, OSError,
                    http.client.HTTPException) as exc:
                self.close()
                if self._breaker is not None:
                    self._breaker.record_failure()
                last_error = exc
                if attempt < self._retry.max_retries:
                    time.sleep(self._retry.delay(attempt))
                continue
            if self._breaker is not None:
                if status >= 500:
                    self._breaker.record_failure()
                else:
                    self._breaker.record_success()
            if status == 200:
                return payload
            error = _error_for(status, payload, headers)
            should_retry, retry_after = _retryable(error)
            last_error = error
            if not should_retry:
                raise error
            if attempt < self._retry.max_retries:
                time.sleep(self._retry.delay(attempt, retry_after))
        assert last_error is not None
        raise last_error

    def _once(self, method: str, path: str, body: Any,
              raw: bool) -> Tuple[int, Dict[str, str], Any]:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout)
        encoded = None
        headers = {}
        if body is not None:
            encoded = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        self._conn.request(method, path, body=encoded, headers=headers)
        response = self._conn.getresponse()
        data = response.read()
        header_map = {k.lower(): v for k, v in response.getheaders()}
        if raw:
            return response.status, header_map, data.decode("utf-8")
        try:
            payload = json.loads(data.decode("utf-8")) if data else None
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = None
        return response.status, header_map, payload


class AsyncServiceClient:
    """Asyncio client speaking HTTP/1.1 over a raw stream pair.

    Unlike the sync client it opens one connection per request, which
    keeps concurrent ``asyncio.gather`` fan-outs trivially correct (no
    shared connection to serialize on).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8371,
                 retry: Optional[RetryConfig] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self._host = host
        self._port = port
        self._retry = retry or RetryConfig()
        self._breaker = breaker

    async def simulate(self, design: str, workload: str,
                       **fields: Any) -> Dict[str, Any]:
        body = {"design": design, "workload": workload, **fields}
        return await self.request("POST", "/simulate", body)

    async def simulate_batch(self, points: List[Dict[str, Any]]
                             ) -> List[Dict[str, Any]]:
        return await self.request("POST", "/batch", points)

    async def healthz(self) -> Dict[str, Any]:
        return await self.request("GET", "/healthz")

    async def metrics(self) -> str:
        return await self.request("GET", "/metrics", raw=True)

    async def request(self, method: str, path: str,
                      body: Any = None, raw: bool = False) -> Any:
        last_error: Optional[Exception] = None
        for attempt in range(self._retry.max_retries + 1):
            if self._breaker is not None \
                    and not self._breaker.allow():
                pause = self._breaker.retry_after()
                last_error = CircuitOpen(retry_after=max(pause, 0.05))
                if attempt < self._retry.max_retries:
                    await asyncio.sleep(max(pause, 0.05))
                continue
            try:
                status, headers, payload = await self._once(
                    method, path, body, raw)
            except (ConnectionError, OSError,
                    asyncio.IncompleteReadError) as exc:
                last_error = exc
                if self._breaker is not None:
                    self._breaker.record_failure()
                if attempt < self._retry.max_retries:
                    await asyncio.sleep(self._retry.delay(attempt))
                continue
            if self._breaker is not None:
                if status >= 500:
                    self._breaker.record_failure()
                else:
                    self._breaker.record_success()
            if status == 200:
                return payload
            error = _error_for(status, payload, headers)
            should_retry, retry_after = _retryable(error)
            last_error = error
            if not should_retry:
                raise error
            if attempt < self._retry.max_retries:
                await asyncio.sleep(
                    self._retry.delay(attempt, retry_after))
        assert last_error is not None
        raise last_error

    async def _once(self, method: str, path: str, body: Any,
                    raw: bool) -> Tuple[int, Dict[str, str], Any]:
        reader, writer = await asyncio.open_connection(
            self._host, self._port)
        try:
            encoded = json.dumps(body).encode("utf-8") \
                if body is not None else b""
            head = [f"{method} {path} HTTP/1.1",
                    f"Host: {self._host}:{self._port}",
                    f"Content-Length: {len(encoded)}",
                    "Content-Type: application/json",
                    "Connection: close"]
            writer.write(("\r\n".join(head) + "\r\n\r\n")
                         .encode("ascii") + encoded)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("ascii", "replace").split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ConnectionError("malformed status line")
            status = int(parts[1])
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or 0)
            data = await reader.readexactly(length) if length \
                else await reader.read()
            if raw:
                return status, headers, data.decode("utf-8")
            try:
                payload = json.loads(data.decode("utf-8")) \
                    if data else None
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = None
            return status, headers, payload
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
