"""Clients for the simulation service (sync and async, stdlib only).

:class:`ServiceClient` wraps :mod:`http.client` for scripts and tests;
:class:`AsyncServiceClient` speaks the same protocol over raw asyncio
streams for high-concurrency callers.  Both share one retry policy
(:class:`RetryConfig`): 429/503 responses and connection-level errors
are retried with exponential backoff, and when the server includes a
``Retry-After`` header (or ``retry_after`` JSON field) that value wins
over the computed delay — the server's estimate reflects the actual
queue, the client's formula does not.

400 and 500 responses are never retried: validation failures and
permanently failed simulations would fail identically again.  They
surface as :class:`ValidationFailed` / :class:`SimulationFailed`; a
retry budget exhausted on backpressure surfaces as the last
:class:`AdmissionRejected` / :class:`ServiceDraining`.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..common.errors import (
    AdmissionRejected,
    ServiceDraining,
    ServiceError,
    SimulationFailed,
    ValidationFailed,
)


@dataclass(frozen=True)
class RetryConfig:
    """Backoff policy for retryable (429/503/connection) failures."""

    max_retries: int = 5
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_cap: float = 10.0

    def delay(self, attempt: int,
              retry_after: Optional[float] = None) -> float:
        """Seconds to sleep before retry ``attempt`` (0-based)."""
        if retry_after is not None and retry_after > 0:
            return min(float(retry_after), self.backoff_cap)
        return min(self.backoff_base * self.backoff_factor ** attempt,
                   self.backoff_cap)


def _error_for(status: int, payload: Any,
               headers: Dict[str, str]) -> ServiceError:
    message = payload.get("error", f"HTTP {status}") \
        if isinstance(payload, dict) else f"HTTP {status}"
    retry_after = None
    header = headers.get("retry-after")
    if header is not None:
        try:
            retry_after = float(header)
        except ValueError:
            retry_after = None
    if retry_after is None and isinstance(payload, dict):
        retry_after = payload.get("retry_after")
    if status == 400:
        return ValidationFailed(message)
    if status == 429:
        return AdmissionRejected(message, retry_after=retry_after or 1.0)
    if status == 503:
        return ServiceDraining(message, retry_after=retry_after or 5.0)
    return SimulationFailed(message)


def _retryable(exc: ServiceError) -> Tuple[bool, Optional[float]]:
    if isinstance(exc, (AdmissionRejected, ServiceDraining)):
        return True, exc.retry_after
    return False, None


class ServiceClient:
    """Blocking client over :mod:`http.client`.

    One client holds one keep-alive connection; it reconnects
    transparently after connection-level errors.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8371,
                 retry: Optional[RetryConfig] = None,
                 timeout: float = 300.0) -> None:
        self._host = host
        self._port = port
        self._retry = retry or RetryConfig()
        self._timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- endpoints -----------------------------------------------------------

    def simulate(self, design: str, workload: str, **fields: Any
                 ) -> Dict[str, Any]:
        """POST one point to ``/simulate`` and return the result body.

        ``fields`` are the optional request fields (``size``,
        ``llc_mb``, ``resident``, ``memory``, ``sample_every``,
        ``overrides``, ``stats``).
        """
        body = {"design": design, "workload": workload, **fields}
        return self.request("POST", "/simulate", body)

    def simulate_batch(self, points: List[Dict[str, Any]]
                       ) -> List[Dict[str, Any]]:
        """POST a list of points to ``/batch``."""
        return self.request("POST", "/batch", points)

    def healthz(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def metrics(self) -> str:
        return self.request("GET", "/metrics", raw=True)

    # -- transport -----------------------------------------------------------

    def request(self, method: str, path: str,
                body: Any = None, raw: bool = False) -> Any:
        last_error: Optional[Exception] = None
        for attempt in range(self._retry.max_retries + 1):
            try:
                status, headers, payload = self._once(
                    method, path, body, raw)
            except (ConnectionError, OSError,
                    http.client.HTTPException) as exc:
                self.close()
                last_error = exc
                if attempt < self._retry.max_retries:
                    time.sleep(self._retry.delay(attempt))
                continue
            if status == 200:
                return payload
            error = _error_for(status, payload, headers)
            should_retry, retry_after = _retryable(error)
            last_error = error
            if not should_retry:
                raise error
            if attempt < self._retry.max_retries:
                time.sleep(self._retry.delay(attempt, retry_after))
        assert last_error is not None
        raise last_error

    def _once(self, method: str, path: str, body: Any,
              raw: bool) -> Tuple[int, Dict[str, str], Any]:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout)
        encoded = None
        headers = {}
        if body is not None:
            encoded = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        self._conn.request(method, path, body=encoded, headers=headers)
        response = self._conn.getresponse()
        data = response.read()
        header_map = {k.lower(): v for k, v in response.getheaders()}
        if raw:
            return response.status, header_map, data.decode("utf-8")
        try:
            payload = json.loads(data.decode("utf-8")) if data else None
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = None
        return response.status, header_map, payload


class AsyncServiceClient:
    """Asyncio client speaking HTTP/1.1 over a raw stream pair.

    Unlike the sync client it opens one connection per request, which
    keeps concurrent ``asyncio.gather`` fan-outs trivially correct (no
    shared connection to serialize on).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8371,
                 retry: Optional[RetryConfig] = None) -> None:
        self._host = host
        self._port = port
        self._retry = retry or RetryConfig()

    async def simulate(self, design: str, workload: str,
                       **fields: Any) -> Dict[str, Any]:
        body = {"design": design, "workload": workload, **fields}
        return await self.request("POST", "/simulate", body)

    async def simulate_batch(self, points: List[Dict[str, Any]]
                             ) -> List[Dict[str, Any]]:
        return await self.request("POST", "/batch", points)

    async def healthz(self) -> Dict[str, Any]:
        return await self.request("GET", "/healthz")

    async def metrics(self) -> str:
        return await self.request("GET", "/metrics", raw=True)

    async def request(self, method: str, path: str,
                      body: Any = None, raw: bool = False) -> Any:
        last_error: Optional[Exception] = None
        for attempt in range(self._retry.max_retries + 1):
            try:
                status, headers, payload = await self._once(
                    method, path, body, raw)
            except (ConnectionError, OSError,
                    asyncio.IncompleteReadError) as exc:
                last_error = exc
                if attempt < self._retry.max_retries:
                    await asyncio.sleep(self._retry.delay(attempt))
                continue
            if status == 200:
                return payload
            error = _error_for(status, payload, headers)
            should_retry, retry_after = _retryable(error)
            last_error = error
            if not should_retry:
                raise error
            if attempt < self._retry.max_retries:
                await asyncio.sleep(
                    self._retry.delay(attempt, retry_after))
        assert last_error is not None
        raise last_error

    async def _once(self, method: str, path: str, body: Any,
                    raw: bool) -> Tuple[int, Dict[str, str], Any]:
        reader, writer = await asyncio.open_connection(
            self._host, self._port)
        try:
            encoded = json.dumps(body).encode("utf-8") \
                if body is not None else b""
            head = [f"{method} {path} HTTP/1.1",
                    f"Host: {self._host}:{self._port}",
                    f"Content-Length: {len(encoded)}",
                    "Content-Type: application/json",
                    "Connection: close"]
            writer.write(("\r\n".join(head) + "\r\n\r\n")
                         .encode("ascii") + encoded)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("ascii", "replace").split(None, 2)
            if len(parts) < 2 or not parts[1].isdigit():
                raise ConnectionError("malformed status line")
            status = int(parts[1])
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or 0)
            data = await reader.readexactly(length) if length \
                else await reader.read()
            if raw:
                return status, headers, data.decode("utf-8")
            try:
                payload = json.loads(data.decode("utf-8")) \
                    if data else None
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = None
            return status, headers, payload
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
