"""Prometheus-text-format metrics for the simulation service.

Stdlib-only metric primitives — counters, gauges, and power-of-two
histograms — rendered in the Prometheus exposition format (version
0.0.4) by :meth:`MetricsRegistry.render`.

Histogram buckets reuse the replay paths' latency-histogram scheme
(:data:`repro.common.stats.LAT_HIST_KEYS`): one bucket per power of
two, index ``int(value).bit_length()``.  Service stage latencies are
observed in microseconds, so the bucket *boundaries* exposed to
Prometheus are ``2**i`` microseconds converted to seconds; aggregated
simulation-cycle histograms keep cycle-valued boundaries.  Sharing the
scheme means a service-side histogram and a simulator ``lat_hist_b*``
counter series are bucket-compatible by construction.

Thread safety: all mutators are single ``int`` additions on dicts with
pre-created cells, safe under the GIL for the service's two-thread
(event loop + dispatcher) usage.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..common.stats import LAT_HIST_KEYS, lat_bucket

#: Scale for stage latencies: seconds -> integer microseconds.
MICROS = 1_000_000


def _fmt(value: float) -> str:
    """A Prometheus-friendly number (integers without trailing .0)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Metric:
    """Base: one named family with labeled children."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text

    def samples(self) -> Iterable[Tuple[str, str, float]]:
        """Yield ``(sample_name, label_text, value)``."""
        raise NotImplementedError


class Counter(Metric):
    """Monotone counter family with optional labels."""

    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        super().__init__(name, help_text)
        self._cells: Dict[Tuple[Tuple[str, str], ...], int] = {}

    def inc(self, amount: int = 1, **labels: str) -> None:
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        self._cells[key] = self._cells.get(key, 0) + amount

    def value(self, **labels: str) -> int:
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        return self._cells.get(key, 0)

    def total(self) -> int:
        return sum(self._cells.values())

    def samples(self):
        if not self._cells:
            yield self.name, "", 0
            return
        for key in sorted(self._cells):
            yield self.name, _labels(key), self._cells[key]


class Gauge(Metric):
    """Point-in-time value; either set explicitly or read on demand."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str,
                 fn: Optional[Callable[[], float]] = None) -> None:
        super().__init__(name, help_text)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._value = value

    def get(self) -> float:
        return self._fn() if self._fn is not None else self._value

    def samples(self):
        yield self.name, "", self.get()


class Histogram(Metric):
    """Power-of-two histogram in the shared ``lat_hist`` scheme.

    ``observe(value)`` buckets by ``int(value).bit_length()``; the
    rendered ``le`` boundaries are ``(2**i - 1) * scale`` (the largest
    value bucket ``i`` can hold, scaled — e.g. microseconds to
    seconds).
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 scale: float = 1.0, max_buckets: int = 40) -> None:
        super().__init__(name, help_text)
        self._scale = scale
        self._nbuckets = min(max_buckets, len(LAT_HIST_KEYS))
        self._counts = [0] * self._nbuckets
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        bucket = min(lat_bucket(int(value)), self._nbuckets - 1)
        self._counts[bucket] += 1
        self._sum += value
        self._count += 1

    def observe_bucket_counts(self, counts: Dict[int, int],
                              weighted_sum: float = 0.0) -> None:
        """Merge pre-bucketed counts (e.g. a run's ``lat_hist_b*``)."""
        for bucket, count in counts.items():
            self._counts[min(bucket, self._nbuckets - 1)] += count
            self._count += count
        self._sum += weighted_sum

    @property
    def count(self) -> int:
        return self._count

    def samples(self):
        cumulative = 0
        for bucket, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            le = ((1 << bucket) - 1) * self._scale
            yield (f"{self.name}_bucket", _labels((("le", _fmt(le)),)),
                   cumulative)
        yield f"{self.name}_bucket", _labels((("le", "+Inf"),)), \
            self._count
        yield f"{self.name}_sum", "", self._sum * self._scale
        yield f"{self.name}_count", "", self._count


class MetricsRegistry:
    """Ordered collection of metric families with a text renderer."""

    def __init__(self, prefix: str = "repro") -> None:
        self._prefix = prefix
        self._metrics: List[Metric] = []
        self._by_name: Dict[str, Metric] = {}

    def _register(self, metric: Metric) -> Metric:
        self._metrics.append(metric)
        self._by_name[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str) -> Counter:
        return self._register(Counter(f"{self._prefix}_{name}",
                                      help_text))

    def gauge(self, name: str, help_text: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        return self._register(Gauge(f"{self._prefix}_{name}",
                                    help_text, fn))

    def histogram(self, name: str, help_text: str,
                  scale: float = 1.0,
                  max_buckets: int = 40) -> Histogram:
        return self._register(Histogram(f"{self._prefix}_{name}",
                                        help_text, scale, max_buckets))

    def get(self, name: str) -> Optional[Metric]:
        return self._by_name.get(f"{self._prefix}_{name}")

    def render(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: List[str] = []
        for metric in self._metrics:
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample_name, label_text, value in metric.samples():
                lines.append(f"{sample_name}{label_text} {_fmt(value)}")
        return "\n".join(lines) + "\n"


def register_worker_gauges(registry: MetricsRegistry,
                           state_path: str, index: int) -> None:
    """Expose the pre-fork master's supervision state on a worker.

    The master is not an HTTP server, so its restart/degradation
    counters would otherwise be invisible to scrapers.  Instead it
    writes an atomic JSON state file and every worker mirrors the
    fleet-level fields as callback gauges — any worker's ``/metrics``
    answers for the whole fleet.  A missing or torn state file reads
    as zeros, never as an error.
    """

    def field(name: str) -> float:
        try:
            with open(state_path, "r", encoding="utf-8") as handle:
                return float(json.load(handle).get(name, 0))
        except (OSError, ValueError, TypeError):
            return 0.0

    registry.gauge("worker_index",
                   "Index of this pre-fork serving worker.",
                   fn=lambda: float(index))
    registry.gauge("worker_restarts_total",
                   "Worker restarts performed by the serving master.",
                   fn=lambda: field("restarts_total"))
    registry.gauge("workers_alive",
                   "Serving workers currently alive under the master.",
                   fn=lambda: field("alive"))
    registry.gauge("workers_target",
                   "Worker count the master is currently maintaining "
                   "(drops below the requested count only after "
                   "crash-loop degradation).",
                   fn=lambda: field("target"))
