"""Request/response schema of the simulation service.

One simulation request is a JSON object::

    {
      "design":       "1P2L",            # required, one of DESIGN_NAMES
      "workload":     "sobel",           # required, a registry workload
      "size":         "small",           # "small" (default) | "large"
      "llc_mb":       1.0,               # an LLC_SIZES point
      "resident":     false,             # Fig. 13 cache-resident setup
      "memory":       "default",         # "default" | "fast" (Fig. 17)
      "sample_every": 0,                 # occupancy sampling stride
      "overrides":    {"cpu.mlp_window": 8},   # SystemConfig overrides
      "stats":        false              # include full flat counters
    }

Validation happens in two stages: field-level checks against the known
design/workload/size vocabulary here, then a full
:class:`~repro.common.config.SystemConfig` construction (including
overrides, via :func:`repro.common.config.apply_overrides`) so every
dataclass ``__post_init__`` invariant is enforced before the request is
admitted.  A request that fails either stage raises
:class:`~repro.common.errors.ValidationFailed` and is answered 400 —
it never reaches the queue.

The response mirrors the request identity and carries the result::

    {"design": ..., "workload": ..., ..., "cycles": 18001, "ops": 9216,
     "l1_hit_rate": 0.93, "llc_requests": 310, "memory_bytes": 39040,
     "source": "simulated" | "cache" | "coalesced",
     "stats": {"cpu.ops": 9216, ...}}      # only when requested

``stats`` is the full flat counter dict of the run — bit-identical to
what a direct :class:`~repro.experiments.runner.ExperimentRunner` run
reports, which is how the service's end-to-end tests verify fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from ..common.errors import ConfigError, ValidationFailed
from ..core.simulator import RunResult
from ..core.system import DESIGN_NAMES, LLC_SIZES
from ..experiments.runner import RunKey, system_for_key
from ..workloads.registry import workload_names

#: Workload sizes the registry builds.
SIZES = ("small", "large")

#: Memory variants a run key can name.
MEMORY_VARIANTS = ("default", "fast")

#: Hard cap on overrides per request (a request is one simulation
#: point, not a sweep description).
MAX_OVERRIDES = 16

#: Hard cap on sharded-replay epochs per request; epochs beyond this
#: add merge overhead without more parallelism on any plausible host.
MAX_SHARDS = 64


@dataclass(frozen=True)
class SimRequest:
    """One validated simulation request."""

    key: RunKey
    want_stats: bool = False


def _bool_field(payload: Mapping[str, Any], name: str,
                default: bool = False) -> bool:
    value = payload.get(name, default)
    if not isinstance(value, bool):
        raise ValidationFailed(
            f"field {name!r} must be a boolean, "
            f"got {type(value).__name__}")
    return value


def parse_request(payload: Any) -> SimRequest:
    """Validate one JSON request body into a :class:`SimRequest`.

    Raises :class:`ValidationFailed` with a caller-actionable message
    on any schema violation.
    """
    if not isinstance(payload, dict):
        raise ValidationFailed("request body must be a JSON object")
    unknown = set(payload) - {"design", "workload", "size", "llc_mb",
                              "resident", "memory", "sample_every",
                              "overrides", "shards", "stats"}
    if unknown:
        raise ValidationFailed(
            f"unknown request field(s): {', '.join(sorted(unknown))}")
    design = payload.get("design")
    if design not in DESIGN_NAMES:
        raise ValidationFailed(
            f"unknown design {design!r}; known: "
            f"{', '.join(DESIGN_NAMES)}")
    workload = payload.get("workload")
    if workload not in workload_names():
        raise ValidationFailed(
            f"unknown workload {workload!r}; known: "
            f"{', '.join(workload_names())}")
    size = payload.get("size", "small")
    if size not in SIZES:
        raise ValidationFailed(
            f"size must be one of {SIZES}, got {size!r}")
    llc_mb = payload.get("llc_mb", 1.0)
    if isinstance(llc_mb, int) and not isinstance(llc_mb, bool):
        llc_mb = float(llc_mb)
    if not isinstance(llc_mb, float):
        raise ValidationFailed("llc_mb must be a number")
    resident = _bool_field(payload, "resident")
    if not resident and llc_mb not in LLC_SIZES:
        raise ValidationFailed(
            f"llc_mb must be one of {sorted(LLC_SIZES)}, got {llc_mb}")
    variant = payload.get("memory", "default")
    if variant not in MEMORY_VARIANTS:
        raise ValidationFailed(
            f"memory must be one of {MEMORY_VARIANTS}, got {variant!r}")
    sample_every = payload.get("sample_every", 0)
    if not isinstance(sample_every, int) or isinstance(sample_every, bool) \
            or sample_every < 0:
        raise ValidationFailed("sample_every must be an integer >= 0")
    overrides = payload.get("overrides") or {}
    if not isinstance(overrides, dict):
        raise ValidationFailed("overrides must be an object of "
                               "dotted-path -> scalar")
    if len(overrides) > MAX_OVERRIDES:
        raise ValidationFailed(
            f"at most {MAX_OVERRIDES} overrides per request")
    shards = payload.get("shards", 1)
    if not isinstance(shards, int) or isinstance(shards, bool) \
            or not 1 <= shards <= MAX_SHARDS:
        raise ValidationFailed(
            f"shards must be an integer in [1, {MAX_SHARDS}]")
    if shards > 1 and sample_every:
        raise ValidationFailed(
            "sample_every and shards>1 are mutually exclusive "
            "(occupancy samples are positional within one replay)")
    want_stats = _bool_field(payload, "stats")
    key = RunKey(design, workload, size, llc_mb, resident, variant,
                 sample_every,
                 tuple(sorted((str(k), v)
                              for k, v in overrides.items())),
                 shards)
    # Stage two: a full config build re-runs every dataclass invariant,
    # and apply_overrides (inside system_for_key) validates each dotted
    # override path and value type.
    try:
        system_for_key(key)
    except ConfigError as exc:
        raise ValidationFailed(str(exc)) from exc
    except (TypeError, ValueError) as exc:
        raise ValidationFailed(f"invalid configuration: {exc}") from exc
    return SimRequest(key=key, want_stats=want_stats)


def request_payload(key: RunKey, want_stats: bool = False) -> Dict[str, Any]:
    """The canonical JSON body describing ``key`` (client side)."""
    body: Dict[str, Any] = {
        "design": key.design,
        "workload": key.workload,
        "size": key.size,
        "llc_mb": key.llc_mb,
        "resident": key.resident,
        "memory": key.memory,
        "sample_every": key.sample_every,
    }
    if key.overrides:
        body["overrides"] = dict(key.overrides)
    if key.shards > 1:
        body["shards"] = key.shards
    if want_stats:
        body["stats"] = True
    return body


def result_payload(key: RunKey, result: RunResult,
                   source: str = "simulated",
                   want_stats: bool = False) -> Dict[str, Any]:
    """The JSON response body for one completed simulation."""
    body = request_payload(key)
    body.update({
        "cycles": result.cycles,
        "ops": result.ops,
        "l1_hit_rate": result.l1_hit_rate(),
        "llc_requests": result.llc_requests(),
        "memory_bytes": result.memory_bytes(),
        "source": source,
    })
    if want_stats:
        body["stats"] = result.stats.flat()
    return body


def error_payload(message: str,
                  retry_after: Optional[float] = None) -> Dict[str, Any]:
    """The JSON body of an error response."""
    body: Dict[str, Any] = {"error": message}
    if retry_after is not None:
        body["retry_after"] = retry_after
    return body
