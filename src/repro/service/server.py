"""The asyncio HTTP/1.1 front end (``repro serve``).

A deliberately small, stdlib-only HTTP server over
:func:`asyncio.start_server`: request lines and headers are parsed by
hand, bodies are ``Content-Length``-delimited, and connections are
kept alive until the peer closes or sends ``Connection: close``.  The
surface is four routes:

* ``GET /healthz`` — liveness plus queue/drain state (JSON); 200
  while serving, 503 the moment a drain begins so probes and load
  balancers stop routing to a worker that will refuse new work;
* ``GET /metrics`` — the registry in Prometheus text format;
* ``POST /simulate`` — one simulation request (see
  :mod:`repro.service.protocol`);
* ``POST /batch`` — a JSON array of simulation requests, answered as
  an array in the same order (each element resolved independently, so
  one invalid or failed point does not poison its neighbours).

Error mapping is the service taxonomy verbatim: ``ValidationFailed``
-> 400, ``AdmissionRejected`` -> 429 + ``Retry-After``,
``ServiceDraining`` -> 503 + ``Retry-After``, ``SimulationFailed`` ->
500.  SIGTERM/SIGINT trigger a graceful drain — stop admitting, finish
in-flight batches, flush the journal, close the listener — and the
process exits 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
import sys
from typing import Any, Dict, List, Optional, Tuple

from ..common.errors import (
    AdmissionRejected,
    ServiceDraining,
    ServiceError,
    SimulationFailed,
    ValidationFailed,
)
from ..experiments import faults
from .batching import SimulationService
from .protocol import error_payload, parse_request, result_payload

#: Largest accepted request body; /batch arrays stay well under this.
MAX_BODY_BYTES = 1 << 20

#: Most points a single /batch request may carry.
MAX_BATCH_ITEMS = 256

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """An HTTP-layer (pre-routing) failure with a fixed status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _status_for(exc: ServiceError) -> Tuple[int, Optional[float]]:
    """Map a service exception to ``(status, retry_after)``."""
    if isinstance(exc, ValidationFailed):
        return 400, None
    if isinstance(exc, AdmissionRejected):
        return 429, exc.retry_after
    if isinstance(exc, ServiceDraining):
        return 503, exc.retry_after
    if isinstance(exc, SimulationFailed):
        return 500, None
    return 500, None


class ServiceServer:
    """HTTP front end binding a :class:`SimulationService` to a port."""

    def __init__(self, service: SimulationService,
                 host: str = "127.0.0.1", port: int = 8371,
                 sock: Optional[socket.socket] = None,
                 tag: str = "") -> None:
        self._service = service
        self._host = host
        self._port = port
        self._sock = sock
        #: Log/fault-token prefix; set to ``w<i>`` by pre-fork workers
        #: so fault draws and stderr lines are per-worker.
        self._tag = tag
        self._name = f"repro-serve[{tag}]" if tag else "repro-serve"
        self._serial = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._drained = asyncio.Event()
        self._drain_task: Optional["asyncio.Task[None]"] = None

    @property
    def service(self) -> SimulationService:
        return self._service

    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when 0)."""
        return self._port

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        await self._service.start()
        if self._sock is not None:
            # A pre-fork master bound (and keeps) the listening
            # socket; every worker serves accepts off the shared fd.
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self._sock)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self._host, self._port)
        sockets = self._server.sockets or ()
        if sockets:
            self._port = sockets[0].getsockname()[1]
        print(f"{self._name}: listening on "
              f"http://{self._host}:{self._port}",
              file=sys.stderr, flush=True)

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, self._begin_drain, signal.Signals(signum).name)

    def _begin_drain(self, signame: str = "request") -> None:
        if self._drain_task is None:
            print(f"{self._name}: {signame} received, draining",
                  file=sys.stderr, flush=True)
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain())

    async def _drain(self) -> None:
        await self._service.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._drained.set()

    async def serve_until_drained(self) -> None:
        """Block until a signal (or :meth:`shutdown`) finishes a drain."""
        await self._drained.wait()
        print(f"{self._name}: drained cleanly", file=sys.stderr,
              flush=True)

    async def shutdown(self) -> None:
        """Programmatic equivalent of SIGTERM (used by tests)."""
        self._begin_drain()
        await self.serve_until_drained()

    # -- the HTTP layer ------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    await self._respond(writer, exc.status,
                                        error_payload(str(exc)))
                    break
                if request is None:
                    break
                method, path, headers, body = request
                status, payload, retry_after = await self._route(
                    method, path, body)
                self._service.metrics.requests.inc(
                    endpoint=path, status=str(status))
                keep_alive = headers.get("connection", "").lower() \
                    != "close"
                await self._respond(writer, status, payload,
                                    retry_after=retry_after,
                                    keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """One request as ``(method, path, headers, body)``; ``None``
        on a clean EOF between requests."""
        try:
            request_line = await reader.readline()
        except (ConnectionError, OSError):
            return None
        if not request_line:
            return None
        try:
            method, target, _version = \
                request_line.decode("ascii").split(None, 2)
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(400, "malformed request line") from None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            try:
                name, _, value = line.decode("latin-1").partition(":")
            except UnicodeDecodeError:
                raise _HttpError(400, "malformed header") from None
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return None
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Any,
                       retry_after: Optional[float] = None,
                       keep_alive: bool = True,
                       content_type: str = "application/json") -> None:
        if isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = (json.dumps(payload) + "\n").encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}"]
        if retry_after is not None:
            head.append(f"Retry-After: {max(1, round(retry_after))}")
        head.append("Connection: "
                    + ("keep-alive" if keep_alive else "close"))
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii")
                     + body)
        await writer.drain()

    # -- routing -------------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes
                     ) -> Tuple[int, Any, Optional[float]]:
        if path == "/healthz":
            if method != "GET":
                return 405, error_payload("healthz is GET-only"), None
            draining = self._service.draining \
                or self._drain_task is not None
            payload = {
                "status": "draining" if draining else "ok",
                "queue_depth": self._service.queue_depth,
                "inflight": self._service.inflight,
            }
            # A draining worker is no longer healthy: 503 flips load
            # balancer / probe checks immediately, while the body
            # still reports the drain's progress.
            if draining:
                return 503, payload, 1.0
            return 200, payload, None
        if path == "/metrics":
            if method != "GET":
                return 405, error_payload("metrics is GET-only"), None
            return 200, self._service.metrics.registry.render(), None
        if path == "/simulate":
            if method != "POST":
                return 405, error_payload("simulate is POST-only"), None
            return await self._simulate_one(body)
        if path == "/batch":
            if method != "POST":
                return 405, error_payload("batch is POST-only"), None
            return await self._simulate_batch(body)
        return 404, error_payload(f"no such endpoint: {path}"), None

    @staticmethod
    def _parse_json(body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValidationFailed(f"request body is not valid JSON: "
                                   f"{exc}") from exc

    async def _fault_sites(self, key: Any) -> None:
        """Fire the armed service fault sites for one point.

        Tokens are ``<tag>:<serial>`` — the worker tag plus a
        per-process request serial — so the same plan kills the same
        requests on every run of a given worker, independent of
        interleaving across workers.
        """
        self._serial += 1
        token = f"{self._tag or 'w0'}:{self._serial}"
        delay = faults.maybe_slow_request(token)
        if delay > 0.0:
            await asyncio.sleep(delay)
        cache = self._service.runner.run_cache
        if cache is not None:
            faults.maybe_corrupt_served_entry(
                cache.path_for(key), token)
        faults.maybe_kill_server(token)

    async def _simulate_one(self, body: bytes
                            ) -> Tuple[int, Any, Optional[float]]:
        try:
            request = parse_request(self._parse_json(body))
            await self._fault_sites(request.key)
            result, source = await self._service.submit(request.key)
        except ServiceError as exc:
            status, retry_after = _status_for(exc)
            return status, error_payload(str(exc), retry_after), \
                retry_after
        return 200, result_payload(request.key, result, source,
                                   request.want_stats), None

    async def _simulate_batch(self, body: bytes
                              ) -> Tuple[int, Any, Optional[float]]:
        try:
            items = self._parse_json(body)
            if not isinstance(items, list):
                raise ValidationFailed(
                    "batch body must be a JSON array")
            if len(items) > MAX_BATCH_ITEMS:
                raise ValidationFailed(
                    f"at most {MAX_BATCH_ITEMS} points per batch")
        except ValidationFailed as exc:
            return 400, error_payload(str(exc)), None

        async def one(item: Any) -> Dict[str, Any]:
            try:
                request = parse_request(item)
                await self._fault_sites(request.key)
                result, source = await self._service.submit(request.key)
            except ServiceError as exc:
                status, retry_after = _status_for(exc)
                payload = error_payload(str(exc), retry_after)
                payload["status"] = status
                return payload
            return result_payload(request.key, result, source,
                                  request.want_stats)

        results: List[Dict[str, Any]] = await asyncio.gather(
            *(one(item) for item in items))
        return 200, results, None


async def _serve(service: SimulationService, host: str, port: int,
                 sock: Optional[socket.socket], tag: str) -> None:
    server = ServiceServer(service, host, port, sock=sock, tag=tag)
    server.install_signal_handlers()
    await server.start()
    await server.serve_until_drained()


def serve_main(service: SimulationService, host: str = "127.0.0.1",
               port: int = 8371,
               sock: Optional[socket.socket] = None,
               tag: str = "") -> int:
    """Run the server until a graceful drain completes; returns 0.

    ``sock`` is an already-bound listening socket (a pre-fork worker's
    inherited fd); when given, ``host``/``port`` are used only for the
    log line.
    """
    asyncio.run(_serve(service, host, port, sock, tag))
    return 0
