"""Simulation-as-a-service: the traffic-facing layer over the engine.

PRs 1-4 built a fast, fault-tolerant *offline* engine — process-pool
scheduling, packed traces, SoA kernels, supervised retries — but every
entry point was a batch CLI.  This package turns that engine into a
server: an asyncio HTTP/1.1 service (stdlib only) that accepts JSON
simulation requests, validates them against the config schema,
coalesces identical in-flight requests, batches distinct ones into
:class:`~repro.experiments.runner.RunKey` plans, and dispatches through
the existing :class:`~repro.experiments.supervisor.Supervisor` so the
retry/timeout/fault taxonomy and the journal carry over unchanged.

Modules:

* :mod:`.protocol` — request/response JSON schema and validation;
* :mod:`.batching` — admission control, coalescing, batch dispatch;
* :mod:`.metrics` — Prometheus-text-format metric primitives;
* :mod:`.server` — the asyncio HTTP server (``repro serve``);
* :mod:`.client` — sync + async client library with retry/backoff.
"""

from .batching import SimulationService
from .client import AsyncServiceClient, RetryConfig, ServiceClient
from .metrics import MetricsRegistry
from .protocol import parse_request, result_payload
from .server import ServiceServer, serve_main

__all__ = [
    "AsyncServiceClient",
    "MetricsRegistry",
    "RetryConfig",
    "ServiceClient",
    "ServiceServer",
    "SimulationService",
    "parse_request",
    "result_payload",
    "serve_main",
]
