"""Simulation-as-a-service: the traffic-facing layer over the engine.

PRs 1-4 built a fast, fault-tolerant *offline* engine — process-pool
scheduling, packed traces, SoA kernels, supervised retries — but every
entry point was a batch CLI.  This package turns that engine into a
server: an asyncio HTTP/1.1 service (stdlib only) that accepts JSON
simulation requests, validates them against the config schema,
coalesces identical in-flight requests, batches distinct ones into
:class:`~repro.experiments.runner.RunKey` plans, and dispatches through
the existing :class:`~repro.experiments.supervisor.Supervisor` so the
retry/timeout/fault taxonomy and the journal carry over unchanged.

``repro serve --workers N`` scales that single process into a
supervised fleet: a pre-fork master binds the socket once, forks N
workers that accept from the shared fd, restarts crashed or hung
workers with capped backoff, and degrades gracefully on crash loops.
Workers coalesce duplicate requests *across processes* through leased
claims on the shared run cache.

Modules:

* :mod:`.protocol` — request/response JSON schema and validation;
* :mod:`.batching` — admission control, coalescing, batch dispatch;
* :mod:`.coalesce` — cross-worker claim board over the run cache;
* :mod:`.metrics` — Prometheus-text-format metric primitives;
* :mod:`.server` — the asyncio HTTP server (``repro serve``);
* :mod:`.master` — pre-fork master and worker supervision;
* :mod:`.client` — sync + async clients with retry/backoff and a
  circuit breaker.
"""

from .batching import SimulationService
from .client import (
    AsyncServiceClient,
    CircuitBreaker,
    RetryConfig,
    ServiceClient,
)
from .coalesce import ClaimBoard
from .master import PreforkMaster
from .metrics import MetricsRegistry
from .protocol import parse_request, result_payload
from .server import ServiceServer, serve_main

__all__ = [
    "AsyncServiceClient",
    "CircuitBreaker",
    "ClaimBoard",
    "MetricsRegistry",
    "PreforkMaster",
    "RetryConfig",
    "ServiceClient",
    "ServiceServer",
    "SimulationService",
    "parse_request",
    "result_payload",
    "serve_main",
]
