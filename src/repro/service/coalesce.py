"""Cross-worker request coalescing over the shared run cache.

One serving process already collapses identical in-flight requests
onto a single future (:mod:`repro.service.batching`).  With a pre-fork
master running N workers that guarantee breaks: the kernel load-
balances accepted connections, so two identical requests routinely
land in two different processes and would both simulate.

:class:`ClaimBoard` restores the collapse with the only channel the
workers already share — the fcntl-locked ``.runcache`` directory.
Before a worker enqueues a simulation it *claims* the point: a claim
file named by the run's cache key under ``<runcache>/.inflight/``,
created under a shard lock so exactly one worker wins.  Shards are
selected by RunKey cache-key hash, so claims for different keys almost
never contend on the same lock while claims for the *same* key always
serialize.  A worker that loses the claim polls the shared cache for
the winner's result instead of re-simulating.

Claims are leases, not locks: a claim file carries its owner's pid
and is considered stale once the pid is gone **or** the file has been
untouched for ``ttl`` seconds, so a worker killed mid-simulation (the
``serve_worker_kill`` fault, an OOM, a SIGKILL) releases its points
within one waiter poll — the pid check catches death instantly; the
TTL is the backstop for a worker that is alive but wedged.
Everything here is best-effort by construction: on any coordination
failure (lock timeout, unreadable claim) the caller simulates
locally, trading duplicate work for correctness.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Optional

from ..common.errors import LockTimeout
from ..common.locking import file_lock

#: Directory (under the run-cache root) holding in-flight claims.
CLAIM_DIRNAME = ".inflight"

#: Default number of claim-lock shards.  Claims for distinct keys hash
#: to distinct locks with high probability; same-key claims collide by
#: construction.
DEFAULT_SHARDS = 16

#: Default lease on a claim, in seconds.  Longer than any healthy
#: simulate-and-store cycle for the served workloads; short enough
#: that a killed worker's orphan claim delays a waiter, not a user.
DEFAULT_TTL = 30.0

#: Bound on waiting for a shard lock; claims are an optimization, so
#: a held lock means "skip coordination", never "block the request".
CLAIM_LOCK_TIMEOUT = 2.0


def shard_of(ck: str, shards: int = DEFAULT_SHARDS) -> int:
    """The claim-lock shard for one run cache key."""
    digest = hashlib.sha256(ck.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % shards


class ClaimBoard:
    """Sharded, leased in-flight claims on a shared cache directory.

    Args:
        root: the run-cache directory shared by all workers.
        shards: number of claim-lock shards (RunKey-hash selected).
        ttl: seconds a claim stays valid without a refresh.
        owner: identity recorded in claim files (defaults to the pid).
        clock: injectable time source for tests.
    """

    def __init__(self, root: str, shards: int = DEFAULT_SHARDS,
                 ttl: float = DEFAULT_TTL,
                 owner: Optional[str] = None,
                 clock=time.time) -> None:
        self._root = root
        self._dir = os.path.join(root, CLAIM_DIRNAME)
        self._shards = max(1, int(shards))
        self._ttl = float(ttl)
        self._owner = owner or f"pid-{os.getpid()}"
        self._clock = clock
        #: Claims this board won (and must release).
        self.granted = 0
        #: Claims denied because another worker holds a fresh lease.
        self.denied = 0
        #: Stale leases taken over from a dead/wedged owner.
        self.takeovers = 0
        #: Shard-lock timeouts (coordination skipped, simulated
        #: locally).
        self.lock_timeouts = 0

    @property
    def ttl(self) -> float:
        return self._ttl

    def _claim_path(self, ck: str) -> str:
        return os.path.join(self._dir, ck + ".claim")

    def _lock_path(self, ck: str) -> str:
        return os.path.join(
            self._dir, f".shard-{shard_of(ck, self._shards):02d}.lock")

    def _age(self, path: str) -> Optional[float]:
        """Seconds since the claim was last refreshed; None if gone."""
        try:
            return max(0.0, self._clock() - os.path.getmtime(path))
        except OSError:
            return None

    def _fresh(self, path: str) -> bool:
        """Is the claim at ``path`` a live lease?

        Fresh means recently touched *and* held by a pid that still
        exists: a killed worker's claims must not stall waiters for
        the whole TTL when one signal-0 probe settles it now.
        """
        age = self._age(path)
        if age is None or age >= self._ttl:
            return False
        try:
            with open(path, "r", encoding="utf-8") as handle:
                pid = int(json.load(handle).get("pid", 0))
        except (OSError, ValueError, TypeError):
            # Unreadable claim: fall back to the TTL alone.
            return True
        if pid <= 0:
            return True
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except OSError:
            pass  # e.g. EPERM: the pid exists but isn't ours
        return True

    # -- the lease protocol --------------------------------------------------

    def claim(self, ck: str) -> bool:
        """Try to win the in-flight claim for ``ck``.

        True means this worker owns the point and must simulate (and
        later :meth:`release`); False means another worker holds a
        fresh lease and this one should wait for the shared cache.
        Any coordination failure degrades to True — simulating twice
        is always safe, waiting on nobody is not.
        """
        path = self._claim_path(ck)
        try:
            os.makedirs(self._dir, exist_ok=True)
            with file_lock(self._lock_path(ck),
                           timeout=CLAIM_LOCK_TIMEOUT):
                if self._fresh(path):
                    self.denied += 1
                    return False
                if self._age(path) is not None:
                    self.takeovers += 1
                tmp = f"{path}.tmp.{os.getpid()}"
                with open(tmp, "w", encoding="utf-8") as handle:
                    json.dump({"owner": self._owner,
                               "pid": os.getpid(),
                               "t": self._clock()}, handle)
                os.replace(tmp, path)
        except LockTimeout:
            self.lock_timeouts += 1
            return True
        except OSError:
            return True
        self.granted += 1
        return True

    def refresh(self, ck: str) -> None:
        """Extend the lease while the simulation is still running."""
        try:
            os.utime(self._claim_path(ck), None)
        except OSError:
            pass

    def release(self, ck: str) -> None:
        """Drop the claim (after the result reached the shared cache)."""
        try:
            os.remove(self._claim_path(ck))
        except OSError:
            pass

    def claimed_elsewhere(self, ck: str) -> bool:
        """True while another worker's lease on ``ck`` is fresh
        (recently touched and its owner pid still alive)."""
        return self._fresh(self._claim_path(ck))
