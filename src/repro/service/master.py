"""Pre-fork master for resilient multi-worker serving.

``repro serve --workers N`` must survive what a single asyncio process
cannot: a worker OOM-killed mid-request, a wedged event loop, a crash
loop after a bad deploy.  :class:`PreforkMaster` is the supervising
parent: it binds the listening socket **once**, forks N workers that
all accept from the inherited fd (the kernel load-balances accepts),
and then runs a plain synchronous supervision loop — deliberately no
asyncio in the master, because forking with a live event loop is
undefined behaviour.

Supervision reuses the experiment engine's failure taxonomy
(:mod:`repro.common.errors`): a worker that exits nonzero is a
:class:`~repro.common.errors.WorkerCrash`, one whose heartbeat file
goes stale is a :class:`~repro.common.errors.WorkerHang` (SIGKILLed,
then treated like a crash).  Both classify as transient, so the slot
is restarted with the supervisor's capped exponential backoff
(:class:`~repro.experiments.supervisor.RetryPolicy`).  A slot that
restarts too many times inside a sliding window is *crash-looping*;
the master degrades gracefully — it retires the slot and carries on
with fewer workers — but never retires the last one: the fleet only
reaches zero workers through a clean drain.

The master is not an HTTP server, so it publishes its supervision
state (restarts, live worker count, degradation) as an atomically
replaced JSON file that every worker mirrors into ``/metrics`` via
callback gauges (:func:`repro.service.metrics.register_worker_gauges`).

SIGTERM/SIGINT to the master forwards SIGTERM to every worker (each
drains gracefully: stop admitting, finish in-flight batches, exit 0)
and SIGKILLs stragglers after a grace period.  Workers share results
through the fcntl-locked run cache, with cross-worker request
coalescing via :class:`repro.service.coalesce.ClaimBoard`.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..common.errors import WorkerCrash, WorkerHang, classify_error
from ..experiments.supervisor import RetryPolicy
from .batching import SimulationService
from .metrics import register_worker_gauges
from .server import serve_main

#: Filename (under OUTDIR) of the master's supervision state.
STATE_FILENAME = ".serve-state.json"

#: How often workers touch their heartbeat file, in seconds.
HEARTBEAT_INTERVAL = 0.5

#: Heartbeat age past which a worker counts as hung.  Generous: the
#: beat comes from a daemon thread, so only a process-level wedge
#: (SIGSTOP, runaway fork, dead scheduler) ever stalls it.
HEARTBEAT_TIMEOUT = 15.0

#: Restarts within :data:`CRASH_LOOP_WINDOW` that mark a crash loop.
CRASH_LOOP_RESTARTS = 5

#: Sliding window for crash-loop detection, in seconds.  Also the
#: uptime after which a slot's consecutive-failure streak resets.
CRASH_LOOP_WINDOW = 30.0


@dataclass
class _WorkerSlot:
    """One supervised worker position (stable across restarts)."""

    index: int
    hb_path: str
    pid: Optional[int] = None
    started: float = 0.0
    #: Consecutive failed lifetimes (resets after a stable uptime).
    failures: int = 0
    #: Total restarts of this slot.
    restarts: int = 0
    #: Recent restart timestamps (crash-loop detection).
    recent: List[float] = field(default_factory=list)
    #: Earliest monotonic time the next spawn may happen.
    next_start: float = 0.0
    #: Crash-looped out of the fleet.
    retired: bool = False
    #: Set when the master SIGKILLed the worker for a stale heartbeat.
    hung: bool = False


def classify_exit(code: int, hung: bool, draining: bool) -> str:
    """Map one worker exit to ``restart``/``clean``/``failed-drain``.

    The taxonomy does the deciding: a hang or nonzero exit builds the
    matching :class:`TransientRunError` and asks
    :func:`classify_error`, so the master's restart rule and the
    experiment supervisor's retry rule can never drift apart.
    """
    if draining:
        return "clean" if code == 0 else "failed-drain"
    if hung:
        exc: BaseException = WorkerHang("heartbeat stale, killed")
    elif code != 0:
        exc = WorkerCrash(f"worker exited with status {code}")
    else:
        # An unsolicited clean exit still leaves the fleet a worker
        # short; restart it, but through the same classified path.
        exc = WorkerCrash("worker exited 0 without a drain request")
    return "restart" if classify_error(exc) == "transient" \
        else "retire"


class PreforkMaster:
    """Bind once, fork N workers, supervise until a clean drain.

    Args:
        build: called **in the child** after fork as ``build(index)``;
            returns the worker's :class:`SimulationService`.  Building
            per-child keeps the master free of event loops, pools,
            and open cache handles at fork time.
        workers: initial fleet size (floored at 1).
        host/port: listening address; port 0 binds an ephemeral port.
        outdir: directory for the supervision state file.
        policy: restart backoff (defaults to the supervisor's).
        clock: injectable monotonic clock for tests.
    """

    def __init__(self, build: Callable[[int], SimulationService],
                 workers: int, host: str = "127.0.0.1",
                 port: int = 8371, outdir: str = "results",
                 policy: Optional[RetryPolicy] = None,
                 heartbeat_timeout: float = HEARTBEAT_TIMEOUT,
                 crash_loop_restarts: int = CRASH_LOOP_RESTARTS,
                 crash_loop_window: float = CRASH_LOOP_WINDOW,
                 drain_grace: float = 30.0, poll: float = 0.1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._build = build
        self._workers = max(1, int(workers))
        self._host = host
        self._port = port
        self._outdir = outdir
        self._policy = policy or RetryPolicy(max_retries=0)
        self._hb_timeout = heartbeat_timeout
        self._loop_restarts = max(2, int(crash_loop_restarts))
        self._loop_window = float(crash_loop_window)
        self._drain_grace = drain_grace
        self._poll = poll
        self._clock = clock
        self._sock: Optional[socket.socket] = None
        self._hb_dir: Optional[str] = None
        self._slots: List[_WorkerSlot] = []
        self._draining = False
        self._drain_signame = ""
        self.restarts_total = 0
        self.state_path = os.path.join(outdir, STATE_FILENAME)

    # -- observability -------------------------------------------------------

    def _log(self, message: str) -> None:
        try:
            print(f"repro-serve-master: {message}", file=sys.stderr,
                  flush=True)
        except OSError:
            # A dead/full log consumer must never take down the
            # process that supervises the fleet.
            pass

    def _write_state(self) -> None:
        """Atomically publish supervision state for worker /metrics."""
        alive = sum(1 for slot in self._slots if slot.pid is not None)
        target = sum(1 for slot in self._slots if not slot.retired)
        state = {
            "target": target,
            "alive": alive,
            "restarts_total": self.restarts_total,
            "retired": [slot.index for slot in self._slots
                        if slot.retired],
            "draining": self._draining,
            "port": self._port,
            "pids": {str(slot.index): slot.pid
                     for slot in self._slots if slot.pid is not None},
        }
        os.makedirs(self._outdir, exist_ok=True)
        tmp = f"{self.state_path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(state, handle)
        os.replace(tmp, self.state_path)

    # -- lifecycle -----------------------------------------------------------

    def _bind(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(128)
        self._port = sock.getsockname()[1]
        self._sock = sock

    def _spawn(self, slot: _WorkerSlot) -> None:
        # Fresh heartbeat so a just-born worker is never "stale".
        with open(slot.hb_path, "w"):
            pass
        pid = os.fork()
        if pid == 0:  # child: never return into the master loop
            status = 1
            try:
                status = _worker_main(
                    slot.index, self._sock, slot.hb_path,
                    self.state_path, self._build,
                    self._host, self._port)
            except BaseException:  # noqa: BLE001 - child boundary
                import traceback
                traceback.print_exc()
            finally:
                os._exit(status)
        slot.pid = pid
        slot.hung = False
        slot.started = self._clock()

    def _signal_all(self, signum: int) -> None:
        for slot in self._slots:
            if slot.pid is not None:
                try:
                    os.kill(slot.pid, signum)
                except ProcessLookupError:
                    pass

    def _on_signal(self, signum: int, _frame: object) -> None:
        self._draining = True
        self._drain_signame = signal.Signals(signum).name

    # -- supervision ---------------------------------------------------------

    def _reap(self) -> bool:
        """Collect exited workers; True when anything changed."""
        changed = False
        for slot in self._slots:
            if slot.pid is None:
                continue
            try:
                pid, status = os.waitpid(slot.pid, os.WNOHANG)
            except ChildProcessError:
                pid, status = slot.pid, 0
            if pid == 0:
                continue
            code = os.waitstatus_to_exitcode(status)
            slot.pid = None
            changed = True
            verdict = classify_exit(code, slot.hung, self._draining)
            if verdict == "clean":
                self._log(f"worker {slot.index} drained (exit 0)")
                continue
            if verdict == "failed-drain":
                self._log(f"worker {slot.index} exited {code} "
                          f"during drain")
                continue
            self._schedule_restart(slot, code)
        return changed

    def _schedule_restart(self, slot: _WorkerSlot, code: int) -> None:
        now = self._clock()
        slot.failures += 1
        slot.restarts += 1
        self.restarts_total += 1
        slot.recent = [t for t in slot.recent
                       if now - t < self._loop_window] + [now]
        why = "heartbeat stale (killed)" if slot.hung \
            else f"exit status {code}"
        if len(slot.recent) >= self._loop_restarts \
                and self._can_degrade():
            slot.retired = True
            remaining = sum(1 for s in self._slots if not s.retired)
            self._log(f"worker {slot.index} crash-looping "
                      f"({len(slot.recent)} restarts in "
                      f"{self._loop_window:.0f}s); degrading to "
                      f"{remaining} worker(s)")
            return
        delay = self._policy.delay(slot.failures)
        slot.next_start = now + delay
        self._log(f"worker {slot.index} down ({why}); restart "
                  f"#{slot.restarts} in {delay:.2f}s")

    def _can_degrade(self) -> bool:
        """Retiring one more slot must leave at least one worker."""
        return sum(1 for slot in self._slots if not slot.retired) > 1

    def _check_heartbeats(self) -> bool:
        """SIGKILL workers whose heartbeat went stale; True on change."""
        changed = False
        now = time.time()
        for slot in self._slots:
            if slot.pid is None or slot.hung:
                continue
            try:
                age = now - os.path.getmtime(slot.hb_path)
            except OSError:
                continue
            if age <= self._hb_timeout:
                continue
            self._log(f"worker {slot.index} heartbeat stale "
                      f"({age:.1f}s > {self._hb_timeout:.1f}s); "
                      f"killing pid {slot.pid}")
            slot.hung = True
            changed = True
            try:
                os.kill(slot.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        return changed

    def _restart_due(self) -> bool:
        """Spawn slots whose backoff expired; True on change."""
        changed = False
        now = self._clock()
        for slot in self._slots:
            if slot.pid is not None or slot.retired:
                continue
            if now < slot.next_start:
                continue
            self._spawn(slot)
            changed = True
        return changed

    def _reset_stable_streaks(self) -> None:
        now = self._clock()
        for slot in self._slots:
            if slot.pid is not None and slot.failures \
                    and now - slot.started > self._loop_window:
                slot.failures = 0
                slot.recent.clear()

    # -- drain ---------------------------------------------------------------

    def _drain(self) -> None:
        self._log(f"{self._drain_signame or 'drain'} received, "
                  f"forwarding SIGTERM to workers")
        self._write_state()
        self._signal_all(signal.SIGTERM)
        deadline = self._clock() + self._drain_grace
        while any(slot.pid is not None for slot in self._slots):
            if self._reap():
                self._write_state()
            if self._clock() >= deadline:
                self._log("drain grace expired; killing stragglers")
                self._signal_all(signal.SIGKILL)
                deadline = self._clock() + self._drain_grace
            time.sleep(self._poll)
        self._write_state()
        self._log("all workers drained")

    # -- entry point ---------------------------------------------------------

    def run(self) -> int:
        """Serve until a signal-initiated drain completes; returns 0."""
        self._bind()
        self._hb_dir = tempfile.mkdtemp(prefix="repro-serve-hb-")
        self._slots = [
            _WorkerSlot(index=i,
                        hb_path=os.path.join(self._hb_dir, f"{i}.hb"))
            for i in range(self._workers)]
        old_term = signal.signal(signal.SIGTERM, self._on_signal)
        old_int = signal.signal(signal.SIGINT, self._on_signal)
        # Readiness line first: the port is already bound, so clients
        # may connect even while workers are still forking (their
        # connections queue in the listen backlog).
        self._log(f"listening on http://{self._host}:{self._port} "
                  f"with {self._workers} worker(s)")
        try:
            for slot in self._slots:
                self._spawn(slot)
            self._write_state()
            while not self._draining:
                changed = self._reap()
                changed |= self._check_heartbeats()
                changed |= self._restart_due()
                self._reset_stable_streaks()
                if changed:
                    self._write_state()
                time.sleep(self._poll)
            self._drain()
        finally:
            signal.signal(signal.SIGTERM, old_term)
            signal.signal(signal.SIGINT, old_int)
            if self._sock is not None:
                self._sock.close()
            self._cleanup_heartbeats()
        return 0

    def _cleanup_heartbeats(self) -> None:
        if self._hb_dir is None:
            return
        for slot in self._slots:
            try:
                os.remove(slot.hb_path)
            except OSError:
                pass
        try:
            os.rmdir(self._hb_dir)
        except OSError:
            pass


def _worker_main(index: int, sock: socket.socket, hb_path: str,
                 state_path: str,
                 build: Callable[[int], SimulationService],
                 host: str, port: int) -> int:
    """Everything a forked worker runs; must end in ``os._exit``."""
    import threading

    # The master's handlers leaked across fork; drop to defaults
    # until serve_main installs the graceful-drain handlers.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)

    def beat() -> None:
        while True:
            try:
                os.utime(hb_path, None)
            except OSError:
                try:
                    with open(hb_path, "w"):
                        pass
                except OSError:
                    pass
            time.sleep(HEARTBEAT_INTERVAL)

    threading.Thread(target=beat, daemon=True,
                     name=f"heartbeat-w{index}").start()
    service = build(index)
    register_worker_gauges(service.metrics.registry, state_path, index)
    return serve_main(service, host=host, port=port, sock=sock,
                      tag=f"w{index}")
