"""Trace file I/O.

A simple line-oriented text format so traces can be generated once,
inspected with standard tools, filtered, or produced by external
tracers and replayed through the simulator:

.. code-block:: text

    # mdacache-trace v1
    R r s 0x1a40 3     <- read, row pref, scalar, address, ref id
    W c v 0x2000 7     <- write, column pref, vector

Fields: operation (``R``/``W``), orientation (``r``/``c``), width
(``s``/``v``), hex byte address, decimal reference id.  Lines starting
with ``#`` are comments.  The format is deliberately trivial — the
point is interoperability, not density.
"""

from __future__ import annotations

from typing import IO, Iterable, Iterator, Union

from ..common.errors import ProgramError
from ..common.types import AccessWidth, Orientation, Request

HEADER = "# mdacache-trace v1"

_OP = {False: "R", True: "W"}
_ORIENT = {Orientation.ROW: "r", Orientation.COLUMN: "c"}
_WIDTH = {AccessWidth.SCALAR: "s", AccessWidth.VECTOR: "v"}

_OP_BACK = {"R": False, "W": True}
_ORIENT_BACK = {"r": Orientation.ROW, "c": Orientation.COLUMN}
_WIDTH_BACK = {"s": AccessWidth.SCALAR, "v": AccessWidth.VECTOR}


def format_request(req: Request) -> str:
    """One trace line for a request."""
    return (f"{_OP[req.is_write]} {_ORIENT[req.orientation]} "
            f"{_WIDTH[req.width]} {req.addr:#x} {req.ref_id}")


def parse_request(line: str) -> Request:
    """Parse one trace line.

    Raises:
        ProgramError: on any malformed field.
    """
    parts = line.split()
    if len(parts) != 5:
        raise ProgramError(f"bad trace line (need 5 fields): {line!r}")
    op, orient, width, addr_text, ref_text = parts
    try:
        is_write = _OP_BACK[op]
        orientation = _ORIENT_BACK[orient]
        access_width = _WIDTH_BACK[width]
    except KeyError as exc:
        raise ProgramError(f"bad trace field {exc} in {line!r}") from None
    try:
        addr = int(addr_text, 16)
        ref_id = int(ref_text)
    except ValueError:
        raise ProgramError(f"bad number in trace line {line!r}") \
            from None
    if addr < 0 or addr % 8 != 0:
        raise ProgramError(f"address must be word-aligned: {line!r}")
    if ref_id < 0:
        raise ProgramError(f"negative ref id: {line!r}")
    return Request(addr, orientation, access_width, is_write, ref_id)


def write_trace(trace: Iterable[Request],
                destination: Union[str, IO[str]]) -> int:
    """Write a trace; returns the number of requests written."""
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            return write_trace(trace, handle)
    destination.write(HEADER + "\n")
    count = 0
    for req in trace:
        destination.write(format_request(req) + "\n")
        count += 1
    return count


def read_trace(source: Union[str, IO[str]]) -> Iterator[Request]:
    """Lazily read a trace file or handle."""
    if isinstance(source, str):
        with open(source) as handle:
            yield from read_trace(handle)
        return
    first = source.readline().strip()
    if first != HEADER:
        raise ProgramError(
            f"not an mdacache trace (header {first!r}, "
            f"expected {HEADER!r})")
    for line in source:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        yield parse_request(line)
