"""Trace file I/O: the text v1 format and the packed binary format.

The text format is a simple line-oriented encoding so traces can be
generated once, inspected with standard tools, filtered, or produced by
external tracers and replayed through the simulator:

.. code-block:: text

    # mdacache-trace v1
    R r s 0x1a40 3     <- read, row pref, scalar, address, ref id
    W c v 0x2000 7     <- write, column pref, vector

Fields: operation (``R``/``W``), orientation (``r``/``c``), width
(``s``/``v``), hex byte address, decimal reference id.  Lines starting
with ``#`` are comments.  The format is deliberately trivial — the
point is interoperability, not density.

The packed binary format is the density counterpart — the on-disk form
of :class:`~repro.common.types.PackedTrace` used by the persistent
trace store and the ``repro trace pack`` / ``repro trace cat``
commands:

.. code-block:: text

    magic   8 bytes   b"MDATRACE"
    version u32 LE    packed format version (currently 1)
    namelen u32 LE    length of the trace-name field
    name    namelen   UTF-8 trace name
    count   u64 LE    number of requests
    payload count*8   one little-endian u64 per request
                      (bit layout: see common.types)
"""

from __future__ import annotations

import mmap
import struct
import sys
from typing import IO, Iterable, Iterator, Tuple, Union

from ..common.errors import ProgramError
from ..common.types import (
    AccessWidth,
    Orientation,
    PackedTrace,
    Request,
)

HEADER = "# mdacache-trace v1"

PACKED_MAGIC = b"MDATRACE"
PACKED_VERSION = 1
_PACKED_HEAD = struct.Struct("<II")   # version, name length
_PACKED_COUNT = struct.Struct("<Q")

_OP = {False: "R", True: "W"}
_ORIENT = {Orientation.ROW: "r", Orientation.COLUMN: "c"}
_WIDTH = {AccessWidth.SCALAR: "s", AccessWidth.VECTOR: "v"}

_OP_BACK = {"R": False, "W": True}
_ORIENT_BACK = {"r": Orientation.ROW, "c": Orientation.COLUMN}
_WIDTH_BACK = {"s": AccessWidth.SCALAR, "v": AccessWidth.VECTOR}


def format_request(req: Request) -> str:
    """One trace line for a request."""
    return (f"{_OP[req.is_write]} {_ORIENT[req.orientation]} "
            f"{_WIDTH[req.width]} {req.addr:#x} {req.ref_id}")


def parse_request(line: str) -> Request:
    """Parse one trace line.

    Raises:
        ProgramError: on any malformed field.
    """
    parts = line.split()
    if len(parts) != 5:
        raise ProgramError(f"bad trace line (need 5 fields): {line!r}")
    op, orient, width, addr_text, ref_text = parts
    try:
        is_write = _OP_BACK[op]
        orientation = _ORIENT_BACK[orient]
        access_width = _WIDTH_BACK[width]
    except KeyError as exc:
        raise ProgramError(f"bad trace field {exc} in {line!r}") from None
    try:
        addr = int(addr_text, 16)
        ref_id = int(ref_text)
    except ValueError:
        raise ProgramError(f"bad number in trace line {line!r}") \
            from None
    if addr < 0 or addr % 8 != 0:
        raise ProgramError(f"address must be word-aligned: {line!r}")
    if ref_id < 0:
        raise ProgramError(f"negative ref id: {line!r}")
    return Request(addr, orientation, access_width, is_write, ref_id)


def write_trace(trace: Iterable[Request],
                destination: Union[str, IO[str]]) -> int:
    """Write a trace; returns the number of requests written."""
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            return write_trace(trace, handle)
    destination.write(HEADER + "\n")
    count = 0
    for req in trace:
        destination.write(format_request(req) + "\n")
        count += 1
    return count


def read_trace(source: Union[str, IO[str]]) -> Iterator[Request]:
    """Lazily read a trace file or handle."""
    if isinstance(source, str):
        with open(source) as handle:
            yield from read_trace(handle)
        return
    first = source.readline().strip()
    if first != HEADER:
        raise ProgramError(
            f"not an mdacache trace (header {first!r}, "
            f"expected {HEADER!r})")
    for line in source:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        yield parse_request(line)


# -- Packed binary format -----------------------------------------------------

def write_packed_trace(trace: PackedTrace,
                       destination: Union[str, IO[bytes]],
                       name: str = "trace") -> int:
    """Write a packed trace file; returns the number of requests."""
    if isinstance(destination, str):
        with open(destination, "wb") as handle:
            return write_packed_trace(trace, handle, name)
    encoded = name.encode("utf-8")
    # NUL-pad the name so the payload lands 64-bit aligned: the fixed
    # header is 16 + 8 bytes, so a multiple-of-8 name field keeps
    # zero-copy mapped reads on the aligned fast path.  Readers strip
    # the padding; unpadded (pre-existing) files stay readable.
    encoded += b"\x00" * (-len(encoded) % 8)
    destination.write(PACKED_MAGIC)
    destination.write(_PACKED_HEAD.pack(PACKED_VERSION, len(encoded)))
    destination.write(encoded)
    destination.write(_PACKED_COUNT.pack(len(trace)))
    destination.write(trace.to_bytes())
    return len(trace)


def read_packed_trace(
        source: Union[str, IO[bytes]]) -> Tuple[str, PackedTrace]:
    """Read a packed trace file; returns ``(name, trace)``.

    Raises:
        ProgramError: bad magic, unsupported version, or a truncated
            header/payload.
    """
    if isinstance(source, str):
        with open(source, "rb") as handle:
            return read_packed_trace(handle)
    magic = source.read(len(PACKED_MAGIC))
    if magic != PACKED_MAGIC:
        raise ProgramError(
            f"not a packed mdacache trace (magic {magic!r})")
    head = source.read(_PACKED_HEAD.size)
    if len(head) != _PACKED_HEAD.size:
        raise ProgramError("truncated packed trace header")
    version, name_len = _PACKED_HEAD.unpack(head)
    if version != PACKED_VERSION:
        raise ProgramError(
            f"unsupported packed trace version {version} "
            f"(expected {PACKED_VERSION})")
    name_bytes = source.read(name_len)
    count_bytes = source.read(_PACKED_COUNT.size)
    if len(name_bytes) != name_len \
            or len(count_bytes) != _PACKED_COUNT.size:
        raise ProgramError("truncated packed trace header")
    (count,) = _PACKED_COUNT.unpack(count_bytes)
    payload = source.read(8 * count)
    if len(payload) != 8 * count:
        raise ProgramError(
            f"truncated packed trace payload (expected {count} "
            f"requests, got {len(payload) // 8})")
    try:
        trace_name = name_bytes.rstrip(b"\x00").decode("utf-8")
    except UnicodeDecodeError:
        raise ProgramError("corrupt packed trace name") from None
    return trace_name, PackedTrace.from_bytes(payload)


#: Header bytes before the name field: magic, version u32, namelen u32.
_PACKED_PREFIX = len(PACKED_MAGIC) + _PACKED_HEAD.size

_BIG_ENDIAN = sys.byteorder == "big"


def read_packed_trace_mapped(path: str) -> Tuple[str, PackedTrace]:
    """Read a packed trace file as a zero-copy ``mmap`` view.

    Same header validation and error contract as
    :func:`read_packed_trace` — bad magic, unsupported version, or a
    truncated header/payload raise :class:`ProgramError`, and I/O
    failures surface as ``OSError`` — but the returned
    :class:`PackedTrace` wraps a read-only ``memoryview('Q')`` over
    the file mapping instead of copying the payload into an
    ``array``.  The mapping stays alive as long as the view does, and
    forked workers share the pages copy-on-write.  Hosts or entries
    the view cannot represent exactly — big-endian byte order, or a
    payload offset that is not 64-bit aligned — silently take the
    copying reader instead; corruption never does.
    """
    if _BIG_ENDIAN:  # pragma: no cover - big-endian hosts
        return read_packed_trace(path)
    with open(path, "rb") as handle:
        try:
            mapped = mmap.mmap(handle.fileno(), 0,
                               access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            # Empty or unmappable file: the copying reader produces
            # the exact same result or the exact same error.
            return read_packed_trace(path)
    view = memoryview(mapped)
    try:
        head = bytes(view[:_PACKED_PREFIX])
        if head[:len(PACKED_MAGIC)] != PACKED_MAGIC:
            raise ProgramError(
                f"not a packed mdacache trace "
                f"(magic {head[:len(PACKED_MAGIC)]!r})")
        if len(head) != _PACKED_PREFIX:
            raise ProgramError("truncated packed trace header")
        version, name_len = _PACKED_HEAD.unpack(
            head[len(PACKED_MAGIC):])
        if version != PACKED_VERSION:
            raise ProgramError(
                f"unsupported packed trace version {version} "
                f"(expected {PACKED_VERSION})")
        offset = _PACKED_PREFIX + name_len + _PACKED_COUNT.size
        if len(view) < offset:
            raise ProgramError("truncated packed trace header")
        name_bytes = bytes(view[_PACKED_PREFIX:
                                _PACKED_PREFIX + name_len])
        (count,) = _PACKED_COUNT.unpack(
            view[offset - _PACKED_COUNT.size:offset])
        if len(view) - offset < 8 * count:
            raise ProgramError(
                f"truncated packed trace payload (expected {count} "
                f"requests, got {(len(view) - offset) // 8})")
        try:
            trace_name = name_bytes.rstrip(b"\x00").decode("utf-8")
        except UnicodeDecodeError:
            raise ProgramError("corrupt packed trace name") from None
        if offset % 8:
            # Unaligned payload (odd name length): numpy gathers over
            # the view would go through the slow unaligned path —
            # copying once is the better trade.
            view.release()
            mapped.close()
            return read_packed_trace(path)
        words = view[offset:offset + 8 * count].cast("Q")
    except Exception:
        view.release()
        mapped.close()
        raise
    return trace_name, PackedTrace(words)
