"""Access-direction prediction (paper Section V, first bullet).

"Detecting the access pattern direction boils down to determining the
set of subscript positions (for an array) in which the index of the
innermost loop appears": with a row-major layout, an innermost variable
appearing only in the *column* subscript (the fastest-changing dimension)
makes the access row-wise; appearing only in the *row* subscript makes
it column-wise (the paper's ``Y[j][i]`` and ``Z[i+j][i+2]`` examples).
Accesses "without discerned preference will be marked as having row
preference".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.types import Orientation
from .program import ArrayRef, LoopNest


@dataclass(frozen=True)
class DirectionInfo:
    """Compiler-derived properties of one static reference.

    Attributes:
        orientation: annotated access preference.
        invariant: the controlling loop variable does not move the ref
            (a register-carried value inside the innermost loop).
        moving_stride: elements advanced along the preferred direction
            per controlling-loop iteration (0 when invariant).
        discerned: False when the preference defaulted to ROW because
            the variable appears in both (or neither) subscript.
    """

    orientation: Orientation
    invariant: bool
    moving_stride: int
    discerned: bool

    @property
    def unit_stride(self) -> bool:
        return abs(self.moving_stride) == 1


def analyze_ref(nest: LoopNest, ref: ArrayRef) -> DirectionInfo:
    """Direction analysis for one reference in its nest."""
    var = nest.controlling_var(ref)
    row_coeff = ref.row.coeff(var)
    col_coeff = ref.col.coeff(var)
    if row_coeff == 0 and col_coeff == 0:
        return DirectionInfo(Orientation.ROW, invariant=True,
                             moving_stride=0, discerned=False)
    if row_coeff == 0:
        # Innermost index only in the fastest-changing (column)
        # subscript: a row-wise walk.
        return DirectionInfo(Orientation.ROW, invariant=False,
                             moving_stride=col_coeff, discerned=True)
    if col_coeff == 0:
        return DirectionInfo(Orientation.COLUMN, invariant=False,
                             moving_stride=row_coeff, discerned=True)
    # Both subscripts move (diagonal-ish): no clean preference.
    return DirectionInfo(Orientation.ROW, invariant=False,
                         moving_stride=col_coeff, discerned=False)


def analyze_ref_1d(nest: LoopNest, ref: ArrayRef) -> DirectionInfo:
    """Direction analysis for a logically 1-D (Design 0) target.

    Without column support every access is row preference; a column-wise
    walk appears as a large non-unit stride in the linearized space, so
    it keeps ``moving_stride`` equal to its row-subscript coefficient
    times the row pitch — approximated here by reporting non-unit stride
    (the vectorizer only needs unit/non-unit and invariance).
    """
    info = analyze_ref(nest, ref)
    if info.orientation is Orientation.COLUMN:
        # Forced into row orientation; the walk is pitch-strided, so it
        # is not unit stride and not vectorizable (paper Section V:
        # state-of-the-art compilers do not vectorize column accesses).
        return DirectionInfo(Orientation.ROW, invariant=info.invariant,
                             moving_stride=8 * info.moving_stride,
                             discerned=False)
    return info
