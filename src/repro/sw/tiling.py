"""Iteration-space tiling (paper Section X, future work).

"The compiler can tile a loop nest such that the tile size (in each
dimension) matches the 2-D block size used by the 2P2L cache or a
desirable multiple thereof.  We expect such hardware-software
collaborative tiling to generate better results than software tiling or
hardware tiling (2P2L) alone."

:func:`tile_nest` strip-mines the selected loops: each tiled loop
``for v in range(0, N)`` becomes an outer tile loop ``v__t`` over
``N // T`` tiles and an inner point loop ``v`` over ``[T*v__t,
T*v__t + T)``.  References are untouched — they still subscript with
the original variables.  Only rectangular (constant-bound) loops can be
tiled; triangular nests like strmm keep their loops as-is.
"""

from __future__ import annotations

from typing import Dict, List

from ..common.errors import ProgramError
from .program import Affine, ArrayRef, Loop, LoopNest, Program

TILE_SUFFIX = "__t"


def _is_constant(expr: Affine) -> bool:
    return not expr.coeffs


def tile_nest(nest: LoopNest, tile_sizes: Dict[str, int]) -> LoopNest:
    """Strip-mine the loops named in ``tile_sizes``.

    Args:
        nest: the nest to transform.
        tile_sizes: loop variable -> tile extent.  Every named loop must
            exist, have constant bounds, and a trip count divisible by
            its tile extent.

    Returns:
        A new nest with the tile loops outermost (in original loop
        order), then every original loop with adjusted bounds.
    """
    by_var = {loop.var: loop for loop in nest.loops}
    for var, size in tile_sizes.items():
        if var not in by_var:
            raise ProgramError(f"nest {nest.name}: no loop {var!r}")
        loop = by_var[var]
        if not (_is_constant(loop.lower) and _is_constant(loop.upper)):
            raise ProgramError(
                f"nest {nest.name}: loop {var!r} has non-rectangular "
                f"bounds and cannot be tiled")
        trip = loop.upper.const - loop.lower.const
        if size < 1 or trip % size != 0:
            raise ProgramError(
                f"nest {nest.name}: trip count {trip} of {var!r} not "
                f"divisible by tile size {size}")

    resolved_refs = nest.resolved_refs()
    tile_loops: List[Loop] = []
    point_loops: List[Loop] = []
    for loop in nest.loops:
        if loop.var not in tile_sizes:
            point_loops.append(loop)
            continue
        size = tile_sizes[loop.var]
        base = loop.lower.const
        trips = (loop.upper.const - base) // size
        tile_var = loop.var + TILE_SUFFIX
        tile_loops.append(Loop.over(tile_var, trips))
        point_loops.append(Loop(
            loop.var,
            Affine.of(tile_var, coeff=size, const=base),
            Affine.of(tile_var, coeff=size, const=base + size),
        ))
    # Shift every ref below the new tile loops: a ref that ran under
    # the first d original loops now runs under all tile loops plus the
    # first d point loops.  (An accumulator carried across the
    # innermost loop is now written once per k-tile — exactly what real
    # tiled code does with its partial sums.)
    shifted = [ArrayRef(ref.array, ref.row, ref.col, ref.is_write,
                        depth=len(tile_loops) + ref.depth, when=ref.when)
               for ref in resolved_refs]
    return LoopNest(name=f"{nest.name}_tiled",
                    loops=tile_loops + point_loops,
                    refs=shifted)


def tile_program(program: Program, tile_sizes: Dict[str, int],
                 only_rectangular: bool = True) -> Program:
    """Tile every nest of a program where the named loops qualify.

    Nests whose named loops are missing or non-rectangular are kept
    unchanged when ``only_rectangular`` is True (the default), instead
    of failing — convenient for programs that mix shapes (ssyrk's
    product nest plus its 2-D rescale pass).
    """
    nests: List[LoopNest] = []
    for nest in program.nests:
        applicable = {var: size for var, size in tile_sizes.items()
                      if var in {loop.var for loop in nest.loops}}
        try:
            nests.append(tile_nest(nest, applicable) if applicable
                         else nest)
        except ProgramError:
            if not only_rectangular:
                raise
            nests.append(nest)
    return Program(f"{program.name}_tiled", list(program.arrays), nests)
