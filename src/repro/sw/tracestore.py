"""Persistent on-disk store of packed traces.

A trace is a pure function of ``(workload, size, logical_dims)`` under
the protocol-default layout, so once generated it can be reused by
every design point, every process, and every future invocation.  The
store mirrors the run cache's durability contract
(:class:`repro.experiments.runner.RunCache`):

* entries are written atomically (temp file + ``os.replace``) so a
  crashed or concurrent writer can never leave a half-written entry
  visible;
* a corrupt, truncated, or version-mismatched entry reads as a miss,
  never as an error — the trace is simply regenerated and rewritten;
* the payload is the packed binary trace format of
  :mod:`repro.sw.tracefile`, so every store entry is also a valid input
  to ``repro trace cat`` / ``repro trace run``.

The store lives under ``OUTDIR/.tracecache`` next to the run cache's
``OUTDIR/.runcache``.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from ..common.errors import ProgramError
from ..common.types import PackedTrace
from .tracefile import read_packed_trace, write_packed_trace

#: Default location of the trace store, relative to an experiment
#: output directory.
TRACECACHE_DIRNAME = ".tracecache"

#: Bump when the trace contents would change for the same key (packed
#: word layout, trace generation semantics); old entries become misses.
TRACE_STORE_VERSION = 1


class TraceStore:
    """Versioned directory of packed trace files."""

    def __init__(self, root: str) -> None:
        self._root = root

    @property
    def root(self) -> str:
        return self._root

    def path_for(self, workload: str, size: str,
                 logical_dims: int) -> str:
        filename = (f"{workload}-{size}-{logical_dims}d"
                    f".v{TRACE_STORE_VERSION}.mdat")
        return os.path.join(self._root, filename)

    def load(self, workload: str, size: str,
             logical_dims: int) -> Optional[Tuple[str, PackedTrace]]:
        """``(program name, trace)``, or ``None`` on any miss."""
        path = self.path_for(workload, size, logical_dims)
        try:
            return read_packed_trace(path)
        except (OSError, ProgramError, ValueError):
            return None

    def store(self, workload: str, size: str, logical_dims: int,
              name: str, trace: PackedTrace) -> None:
        os.makedirs(self._root, exist_ok=True)
        path = self.path_for(workload, size, logical_dims)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            write_packed_trace(trace, tmp, name=name)
            os.replace(tmp, path)
        except OSError:
            # A read-only or full store is a cache, not a requirement.
            try:
                os.remove(tmp)
            except OSError:
                pass

    def clear(self) -> int:
        """Delete every store entry; returns the number removed."""
        removed = 0
        if not os.path.isdir(self._root):
            return removed
        for entry in os.listdir(self._root):
            if entry.endswith(".mdat"):
                os.remove(os.path.join(self._root, entry))
                removed += 1
        return removed

    def __len__(self) -> int:
        if not os.path.isdir(self._root):
            return 0
        return sum(1 for entry in os.listdir(self._root)
                   if entry.endswith(".mdat"))
