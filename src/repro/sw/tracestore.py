"""Persistent on-disk store of packed traces.

A trace is a pure function of ``(workload, size, logical_dims)`` under
the protocol-default layout, so once generated it can be reused by
every design point, every process, and every future invocation.  The
store mirrors the run cache's durability contract
(:class:`repro.experiments.runner.RunCache`):

* entries are written atomically (temp file + ``os.replace``) under an
  advisory lock on ``<root>/.lock``, so a crashed writer can never
  leave a half-written entry visible and two concurrent ``repro``
  invocations sharing an OUTDIR cannot interleave torn writes (this
  replaces the original single-writer assumption; see
  :mod:`repro.common.locking`);
* a corrupt, truncated, or version-mismatched entry reads as a miss,
  never as an error — the trace is simply regenerated and rewritten.
  Corrupt entries are additionally *quarantined* (renamed to
  ``<entry>.mdat.corrupt`` and counted in :attr:`corrupt_quarantined`)
  so they fail once, not on every read, and remain inspectable;
* the payload is the packed binary trace format of
  :mod:`repro.sw.tracefile`, so every store entry is also a valid input
  to ``repro trace cat`` / ``repro trace run``.

The store lives under ``OUTDIR/.tracecache`` next to the run cache's
``OUTDIR/.runcache``.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from ..common.errors import LockTimeout, ProgramError
from ..common.locking import file_lock, lock_path_for
from ..common.types import PackedTrace
from .tracefile import read_packed_trace_mapped, write_packed_trace

#: Default location of the trace store, relative to an experiment
#: output directory.
TRACECACHE_DIRNAME = ".tracecache"

#: Bump when the trace contents would change for the same key (packed
#: word layout, trace generation semantics); old entries become misses.
TRACE_STORE_VERSION = 1

#: Suffix a quarantined (corrupt) store entry is renamed to.
QUARANTINE_SUFFIX = ".corrupt"


class TraceStore:
    """Versioned directory of packed trace files."""

    def __init__(self, root: str,
                 lock_timeout: float = 10.0) -> None:
        self._root = root
        self._lock_timeout = lock_timeout
        #: Corrupt entries quarantined by :meth:`load` so far.
        self.corrupt_quarantined = 0
        #: Best-effort writes skipped because the lock stayed held.
        self.lock_timeouts = 0

    @property
    def root(self) -> str:
        return self._root

    def path_for(self, workload: str, size: str,
                 logical_dims: int) -> str:
        filename = (f"{workload}-{size}-{logical_dims}d"
                    f".v{TRACE_STORE_VERSION}.mdat")
        return os.path.join(self._root, filename)

    def load(self, workload: str, size: str,
             logical_dims: int) -> Optional[Tuple[str, PackedTrace]]:
        """``(program name, trace)``, or ``None`` on any miss.

        Hits are served zero-copy: the returned trace is a read-only
        ``memoryview`` over an ``mmap`` of the store entry, so repeat
        loads and forked workers share one set of page-cache pages
        (:func:`repro.sw.tracefile.read_packed_trace_mapped`; hosts or
        entries the view cannot represent take the copying reader
        inside it).  The durability contract is unchanged — a corrupt,
        truncated, or version-mismatched entry still reads as a miss
        and is quarantined, never raised.
        """
        path = self.path_for(workload, size, logical_dims)
        try:
            return read_packed_trace_mapped(path)
        except FileNotFoundError:
            return None
        except (OSError, ProgramError, ValueError, EOFError):
            self._quarantine(path)
            return None

    def store(self, workload: str, size: str, logical_dims: int,
              name: str, trace: PackedTrace) -> None:
        os.makedirs(self._root, exist_ok=True)
        path = self.path_for(workload, size, logical_dims)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with file_lock(lock_path_for(self._root),
                           timeout=self._lock_timeout):
                write_packed_trace(trace, tmp, name=name)
                os.replace(tmp, path)
        except LockTimeout:
            self.lock_timeouts += 1
            self._remove_tmp(tmp)
            return
        except OSError:
            # A read-only or full store is a cache, not a requirement.
            self._remove_tmp(tmp)
            return
        from ..experiments import faults
        faults.maybe_corrupt_file(path, token=os.path.basename(path))

    def _quarantine(self, path: str) -> None:
        try:
            os.replace(path, path + QUARANTINE_SUFFIX)
        except OSError:
            return
        self.corrupt_quarantined += 1

    @staticmethod
    def _remove_tmp(tmp: str) -> None:
        try:
            os.remove(tmp)
        except OSError:
            pass

    def clear(self) -> int:
        """Delete every store entry (quarantined ones too); returns
        the number of live entries removed."""
        removed = 0
        if not os.path.isdir(self._root):
            return removed
        for entry in os.listdir(self._root):
            if entry.endswith(".mdat"):
                os.remove(os.path.join(self._root, entry))
                removed += 1
            elif entry.endswith(".mdat" + QUARANTINE_SUFFIX):
                os.remove(os.path.join(self._root, entry))
        return removed

    def __len__(self) -> int:
        if not os.path.isdir(self._root):
            return 0
        return sum(1 for entry in os.listdir(self._root)
                   if entry.endswith(".mdat"))
