"""Program IR: affine loop nests over 2-D arrays.

The compiler support of paper Section V operates on "frequently-used
computational kernels" whose array subscripts are affine in the loop
variables — exactly what this tiny IR expresses.  A
:class:`Program` is a sequence of :class:`LoopNest`; each nest carries
perfectly-nested loops (bounds may be affine in outer variables, which
covers the triangular ``strmm``) and a list of :class:`ArrayRef`.

A ref's ``depth`` says how many enclosing loops it executes under: a ref
at full depth runs every innermost iteration; a ref at smaller depth
models register-carried values (e.g. the ``sum`` accumulator write in
matrix multiplication, which touches ``MatOut[i][j]`` once per (i, j)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple, Union

from ..common.errors import ProgramError


@dataclass(frozen=True)
class Affine:
    """An affine expression ``sum(coeff * var) + const``."""

    coeffs: Tuple[Tuple[str, int], ...] = ()
    const: int = 0

    @staticmethod
    def of(var: str, coeff: int = 1, const: int = 0) -> "Affine":
        """Shorthand for ``coeff * var + const``."""
        if coeff == 0:
            return Affine((), const)
        return Affine(((var, coeff),), const)

    @staticmethod
    def constant(value: int) -> "Affine":
        return Affine((), value)

    def coeff(self, var: str) -> int:
        """Coefficient of ``var`` (0 when absent)."""
        for name, value in self.coeffs:
            if name == var:
                return value
        return 0

    def variables(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.coeffs)

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Value of the expression under a loop-variable binding."""
        total = self.const
        for name, coeff in self.coeffs:
            try:
                total += coeff * env[name]
            except KeyError:
                raise ProgramError(f"unbound loop variable {name!r}") \
                    from None
        return total

    def __add__(self, other: Union["Affine", int]) -> "Affine":
        if isinstance(other, int):
            return Affine(self.coeffs, self.const + other)
        merged: Dict[str, int] = dict(self.coeffs)
        for name, coeff in other.coeffs:
            merged[name] = merged.get(name, 0) + coeff
        coeffs = tuple(sorted((n, c) for n, c in merged.items() if c))
        return Affine(coeffs, self.const + other.const)

    def __str__(self) -> str:
        parts = [f"{c}*{n}" if c != 1 else n for n, c in self.coeffs]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


@dataclass(frozen=True)
class ArrayDecl:
    """A logically 2-D array of 64-bit elements."""

    name: str
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ProgramError(f"array {self.name}: empty shape")

    @property
    def elements(self) -> int:
        return self.rows * self.cols


@dataclass(frozen=True)
class ArrayRef:
    """One static array reference inside a nest.

    Attributes:
        array: the referenced array.
        row / col: affine subscripts.
        is_write: store versus load.
        depth: number of enclosing loops (defaults to the full nest when
            left at 0; resolved by :meth:`LoopNest.resolved_refs`).
        when: for refs above full depth, whether they execute "before"
            or "after" the loops below them (accumulator reads happen
            before the reduction loop, the final store after it).
    """

    array: ArrayDecl
    row: Affine
    col: Affine
    is_write: bool = False
    depth: int = 0
    when: str = "before"

    def __post_init__(self) -> None:
        if self.when not in ("before", "after"):
            raise ProgramError(f"bad ref position {self.when!r}")


@dataclass(frozen=True)
class Loop:
    """A normalized loop ``for var in range(lower, upper)``.

    Bounds are affine in *outer* loop variables (triangular nests).
    """

    var: str
    lower: Affine
    upper: Affine

    @staticmethod
    def over(var: str, extent: int) -> "Loop":
        return Loop(var, Affine.constant(0), Affine.constant(extent))

    @staticmethod
    def bounded(var: str, lower: Union[int, Affine],
                upper: Union[int, Affine]) -> "Loop":
        low = Affine.constant(lower) if isinstance(lower, int) else lower
        high = Affine.constant(upper) if isinstance(upper, int) else upper
        return Loop(var, low, high)


@dataclass
class LoopNest:
    """Perfectly nested loops with refs attached at arbitrary depths."""

    name: str
    loops: List[Loop]
    refs: List[ArrayRef] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.loops:
            raise ProgramError(f"nest {self.name}: no loops")
        seen = set()
        for loop in self.loops:
            if loop.var in seen:
                raise ProgramError(
                    f"nest {self.name}: duplicate loop var {loop.var!r}")
            seen.add(loop.var)
        for ref in self.refs:
            for var in (*ref.row.variables(), *ref.col.variables()):
                if var not in seen:
                    raise ProgramError(
                        f"nest {self.name}: ref uses unbound {var!r}")

    @property
    def innermost(self) -> Loop:
        return self.loops[-1]

    def resolved_refs(self) -> List[ArrayRef]:
        """Refs with depth 0 resolved to the full nest depth."""
        full = len(self.loops)
        out = []
        for ref in self.refs:
            depth = ref.depth or full
            if not 1 <= depth <= full:
                raise ProgramError(
                    f"nest {self.name}: ref depth {depth} out of range")
            if depth != ref.depth:
                ref = ArrayRef(ref.array, ref.row, ref.col, ref.is_write,
                               depth, ref.when)
            out.append(ref)
        return out

    def controlling_var(self, ref: ArrayRef) -> str:
        """Fastest-changing loop variable governing ``ref``."""
        depth = ref.depth or len(self.loops)
        return self.loops[depth - 1].var


@dataclass
class Program:
    """A named kernel: its arrays and its loop nests, in order."""

    name: str
    arrays: List[ArrayDecl]
    nests: List[LoopNest]

    def __post_init__(self) -> None:
        names = [a.name for a in self.arrays]
        if len(set(names)) != len(names):
            raise ProgramError(f"{self.name}: duplicate array names")
        declared = set(names)
        for nest in self.nests:
            for ref in nest.refs:
                if ref.array.name not in declared:
                    raise ProgramError(
                        f"{self.name}: nest {nest.name} references "
                        f"undeclared array {ref.array.name!r}")

    def array(self, name: str) -> ArrayDecl:
        for decl in self.arrays:
            if decl.name == name:
                return decl
        raise ProgramError(f"{self.name}: no array named {name!r}")

    def static_refs(self) -> Iterable[Tuple[LoopNest, ArrayRef]]:
        """All (nest, ref) pairs, in program order."""
        for nest in self.nests:
            for ref in nest.resolved_refs():
                yield nest, ref
