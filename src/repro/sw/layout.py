"""Memory layouts: linear row-major and MDA-compliant tiled.

Paper Section V, second bullet: the compiler must "match the dimension
sizes of the array data structures to the dimensions of the MDA memory"
via intra-array padding, so that elements in the same logical column
"map to the same column in the MDA memory structure".

In this model the physical address space is itself organized in aligned
512-byte tiles (see :mod:`repro.common.types`), so MDA compliance means
a **tiled layout**: pad both dimensions to multiples of 8 and place each
8x8 element tile of the array in one physical tile.  The conventional
**linear layout** is plain row-major (padded only to line alignment) —
the "1-D optimized" layout every logically 1-D experiment uses.
"""

from __future__ import annotations

import abc
from typing import Dict, List

from ..common.errors import AddressError, ProgramError
from ..common.types import (
    LINE_BYTES,
    TILE_BYTES,
    WORD_BYTES,
    word_addr,
)
from .program import ArrayDecl


def _round_up(value: int, multiple: int) -> int:
    return (value + multiple - 1) // multiple * multiple


class Layout(abc.ABC):
    """Maps (array, i, j) to physical byte addresses."""

    def __init__(self, arrays: List[ArrayDecl]) -> None:
        self._arrays: Dict[str, ArrayDecl] = {}
        for decl in arrays:
            if decl.name in self._arrays:
                raise ProgramError(f"duplicate array {decl.name!r}")
            self._arrays[decl.name] = decl

    @abc.abstractmethod
    def address_of(self, array: str, i: int, j: int) -> int:
        """Physical byte address of element ``array[i][j]``."""

    @abc.abstractmethod
    def footprint_bytes(self) -> int:
        """Total mapped bytes, padding included."""

    def data_bytes(self) -> int:
        """Bytes of live data (padding excluded)."""
        return sum(a.elements * WORD_BYTES for a in self._arrays.values())

    def padding_bytes(self) -> int:
        return self.footprint_bytes() - self.data_bytes()

    def _decl(self, array: str) -> ArrayDecl:
        try:
            return self._arrays[array]
        except KeyError:
            raise AddressError(f"unknown array {array!r}") from None

    def _check_bounds(self, decl: ArrayDecl, i: int, j: int) -> None:
        if not (0 <= i < decl.rows and 0 <= j < decl.cols):
            raise AddressError(
                f"{decl.name}[{i}][{j}] out of bounds "
                f"({decl.rows}x{decl.cols})")


class LinearLayout(Layout):
    """Row-major, line-aligned arrays — the 1-D optimized layout."""

    def __init__(self, arrays: List[ArrayDecl]) -> None:
        super().__init__(arrays)
        self._base: Dict[str, int] = {}
        self._pitch: Dict[str, int] = {}
        cursor = 0
        for decl in arrays:
            # Pad the pitch to a whole line so rows are vector-aligned.
            # Deliberately *no* conflict-avoiding padding beyond that:
            # the paper's 1-D layout is plain "row-major (as in
            # C-language)", whose power-of-two pitches give column
            # walks the classic set-conflict pathology — part of what
            # MDA caching rescues (see EXPERIMENTS.md fidelity notes).
            pitch = _round_up(decl.cols, LINE_BYTES // WORD_BYTES)
            self._base[decl.name] = cursor
            self._pitch[decl.name] = pitch
            cursor += _round_up(decl.rows * pitch * WORD_BYTES, LINE_BYTES)
        self._footprint = cursor

    def address_of(self, array: str, i: int, j: int) -> int:
        decl = self._decl(array)
        self._check_bounds(decl, i, j)
        return (self._base[array]
                + (i * self._pitch[array] + j) * WORD_BYTES)

    def pitch_words(self, array: str) -> int:
        return self._pitch[array]

    def footprint_bytes(self) -> int:
        return self._footprint


class TiledLayout(Layout):
    """MDA-compliant tiled layout (intra-array padding to 8x8 tiles).

    Element ``(i, j)`` lands in the physical tile at grid position
    ``(i // 8, j // 8)`` of its array, at in-tile coordinates
    ``(i % 8, j % 8)`` — so each logical 8-row column segment is one
    column line and each logical 8-element row segment is one row line.
    """

    def __init__(self, arrays: List[ArrayDecl]) -> None:
        super().__init__(arrays)
        self._base_tile: Dict[str, int] = {}
        self._tile_cols: Dict[str, int] = {}
        cursor = 0  # in tiles
        for decl in arrays:
            tile_rows = _round_up(decl.rows, 8) // 8
            tile_cols = _round_up(decl.cols, 8) // 8
            self._base_tile[decl.name] = cursor
            self._tile_cols[decl.name] = tile_cols
            cursor += tile_rows * tile_cols
        self._footprint = cursor * TILE_BYTES

    def address_of(self, array: str, i: int, j: int) -> int:
        decl = self._decl(array)
        self._check_bounds(decl, i, j)
        tile = (self._base_tile[array]
                + (i // 8) * self._tile_cols[array] + (j // 8))
        return word_addr(tile, i % 8, j % 8)

    def tile_of(self, array: str, i: int, j: int) -> int:
        """Tile index holding element (i, j) (for tests)."""
        decl = self._decl(array)
        self._check_bounds(decl, i, j)
        return (self._base_tile[array]
                + (i // 8) * self._tile_cols[array] + (j // 8))

    def footprint_bytes(self) -> int:
        return self._footprint


def make_layout(arrays: List[ArrayDecl], logical_dims: int) -> Layout:
    """The paper's rule: layout always matches the hierarchy's logical
    dimensionality ("we will always use the memory layout optimized for
    the appropriate logical dimensionality of the cache hierarchy")."""
    if logical_dims == 2:
        return TiledLayout(arrays)
    return LinearLayout(arrays)
