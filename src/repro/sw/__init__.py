"""Software support: program IR, direction analysis, layout, vectorizer."""

from .directions import DirectionInfo, analyze_ref, analyze_ref_1d
from .layout import Layout, LinearLayout, TiledLayout, make_layout
from .profiling import ProfileVerdict, profile_directions, profile_ref
from .program import Affine, ArrayDecl, ArrayRef, Loop, LoopNest, Program
from .tiling import tile_nest, tile_program
from .tracefile import format_request, parse_request, read_trace, write_trace
from .tracegen import (
    TraceMix,
    generate_trace,
    materialize,
    trace_compiled,
    trace_length,
    trace_mix,
)
from .vectorizer import (
    CompiledNest,
    CompiledProgram,
    CompiledRef,
    VECTOR_LANES,
    VecClass,
    classify_ref,
    compile_program,
)

__all__ = [
    "Affine",
    "ArrayDecl",
    "ArrayRef",
    "CompiledNest",
    "CompiledProgram",
    "CompiledRef",
    "DirectionInfo",
    "Layout",
    "LinearLayout",
    "Loop",
    "LoopNest",
    "ProfileVerdict",
    "Program",
    "TiledLayout",
    "TraceMix",
    "VECTOR_LANES",
    "VecClass",
    "analyze_ref",
    "analyze_ref_1d",
    "classify_ref",
    "compile_program",
    "profile_directions",
    "profile_ref",
    "tile_nest",
    "tile_program",
    "format_request",
    "parse_request",
    "read_trace",
    "write_trace",
    "generate_trace",
    "make_layout",
    "materialize",
    "trace_compiled",
    "trace_length",
    "trace_mix",
]
