"""Profiling-based orientation annotation (paper Section V).

"In cases where a data reference in the target code does not exhibit a
strong row or column preference that can be detected by the compiler,
we can employ profiling.  More specifically, profiling can be used to
extract directional bias and then the corresponding static load/store
instructions can be annotated as suggested by the profiler."

:func:`profile_directions` walks a program's iteration space once per
undiscerned reference and counts, along the access order, how often the
current *row line* and *column line* change.  The orientation whose
line switches less often has the denser spatial locality — fetching
along it amortizes each line over more accesses — and becomes the
annotation.  (Counting distinct lines would not work: any reference
covering a full rectangle touches the same number of row and column
lines regardless of its walk order.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from ..common.types import Orientation, line_id_of
from .directions import analyze_ref
from .layout import Layout, TiledLayout
from .program import ArrayRef, LoopNest, Program


@dataclass(frozen=True)
class ProfileVerdict:
    """Profiler outcome for one undiscerned static reference.

    ``row_switches``/``col_switches`` count how often the access walk
    left its current row/column line.
    """

    nest: str
    array: str
    row_switches: int
    col_switches: int

    @property
    def orientation(self) -> Orientation:
        """The orientation that switches lines less often wins; ties
        keep the default row preference."""
        if self.row_switches < self.col_switches:
            return Orientation.ROW
        if self.col_switches < self.row_switches:
            return Orientation.COLUMN
        return Orientation.ROW


def _iterate_ref(nest: LoopNest, ref: ArrayRef,
                 layout: Layout) -> Iterator[int]:
    """Element addresses a ref touches over its governing loops."""
    depth = ref.depth or len(nest.loops)

    def walk(level: int, env: Dict[str, int]) -> Iterator[int]:
        if level == depth:
            yield layout.address_of(ref.array.name,
                                    ref.row.evaluate(env),
                                    ref.col.evaluate(env))
            return
        loop = nest.loops[level]
        for value in range(loop.lower.evaluate(env),
                           loop.upper.evaluate(env)):
            env[loop.var] = value
            yield from walk(level + 1, env)
        env.pop(loop.var, None)

    return walk(0, {})


def profile_ref(nest: LoopNest, ref: ArrayRef,
                layout: Layout) -> ProfileVerdict:
    """Count row-line and column-line switches along the access walk."""
    row_switches = 0
    col_switches = 0
    prev_row = prev_col = None
    for addr in _iterate_ref(nest, ref, layout):
        row = line_id_of(addr, Orientation.ROW)
        col = line_id_of(addr, Orientation.COLUMN)
        if row != prev_row:
            row_switches += 1
            prev_row = row
        if col != prev_col:
            col_switches += 1
            prev_col = col
    return ProfileVerdict(nest=nest.name, array=ref.array.name,
                          row_switches=row_switches,
                          col_switches=col_switches)


def profile_directions(program: Program) \
        -> Dict[Tuple[str, int], ProfileVerdict]:
    """Profile every reference the static analysis could not discern.

    Returns a map from ``(nest name, ref position)`` to the verdict;
    discerned references are skipped (static analysis already has the
    answer and profiling costs a full traversal).
    """
    layout = TiledLayout(program.arrays)
    verdicts: Dict[Tuple[str, int], ProfileVerdict] = {}
    for nest in program.nests:
        for position, ref in enumerate(nest.resolved_refs()):
            info = analyze_ref(nest, ref)
            if info.discerned or info.invariant:
                continue
            verdicts[(nest.name, position)] = profile_ref(nest, ref,
                                                          layout)
    return verdicts
