"""Row *and* column vectorization (paper Section V, third bullet).

"Since our architecture allows column-wise reads in one shot, we apply
vectorization in the column direction as well as the row direction."
The vectorizer classifies every static reference:

* ``VECTOR`` — unit stride along its preferred direction: the innermost
  loop is strip-mined by 8 and the ref becomes one line-wide access per
  group (two when the group is line-misaligned).
* ``SCALAR_HOISTED`` — invariant in the controlling loop: one scalar
  access per vector group (a register-carried value).
* ``SCALAR_SERIAL`` — non-unit stride: stays one scalar access per lane.

In logically 1-D (Design 0) compilation, column-preference walks are
pitch-strided in the linear space, so they classify SCALAR_SERIAL — the
conventional-compiler behavior the paper contrasts against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from .directions import DirectionInfo, analyze_ref, analyze_ref_1d
from .program import ArrayRef, LoopNest, Program

VECTOR_LANES = 8


class VecClass(enum.Enum):
    VECTOR = "vector"
    SCALAR_HOISTED = "scalar_hoisted"
    SCALAR_SERIAL = "scalar_serial"


@dataclass(frozen=True)
class CompiledRef:
    """A static reference with its compiler annotations."""

    ref: ArrayRef
    direction: DirectionInfo
    vec_class: VecClass
    ref_id: int


@dataclass
class CompiledNest:
    """A loop nest after direction analysis and vectorization."""

    nest: LoopNest
    refs: List[CompiledRef]
    vectorized: bool

    def innermost_refs(self) -> List[CompiledRef]:
        full = len(self.nest.loops)
        return [cr for cr in self.refs if cr.ref.depth == full]

    def refs_at(self, depth: int, when: str) -> List[CompiledRef]:
        return [cr for cr in self.refs
                if cr.ref.depth == depth and cr.ref.when == when]


@dataclass
class CompiledProgram:
    """All nests of a program, compiled for a logical dimensionality."""

    program: Program
    logical_dims: int
    nests: List[CompiledNest]

    def all_refs(self) -> List[CompiledRef]:
        return [cr for nest in self.nests for cr in nest.refs]


def classify_ref(direction: DirectionInfo) -> VecClass:
    """Vectorization class from the direction analysis result."""
    if direction.invariant:
        return VecClass.SCALAR_HOISTED
    if direction.unit_stride:
        return VecClass.VECTOR
    return VecClass.SCALAR_SERIAL


def compile_program(program: Program,
                    logical_dims: int = 2) -> CompiledProgram:
    """Run direction analysis + vectorization over every nest.

    Args:
        program: the kernel IR.
        logical_dims: 2 for MDA hierarchies (row and column
            vectorization), 1 for the Design 0 baseline (row only).
    """
    analyze = analyze_ref if logical_dims == 2 else analyze_ref_1d
    compiled_nests: List[CompiledNest] = []
    next_ref_id = 0
    for nest in program.nests:
        compiled_refs: List[CompiledRef] = []
        full = len(nest.loops)
        any_vector = False
        for ref in nest.resolved_refs():
            direction = analyze(nest, ref)
            vec_class = classify_ref(direction)
            if ref.depth != full and vec_class is VecClass.VECTOR:
                # Refs above the innermost loop execute once per outer
                # iteration; they stay scalar.
                vec_class = VecClass.SCALAR_SERIAL
            if ref.depth == full and vec_class is VecClass.VECTOR:
                any_vector = True
            compiled_refs.append(
                CompiledRef(ref, direction, vec_class, next_ref_id))
            next_ref_id += 1
        compiled_nests.append(
            CompiledNest(nest, compiled_refs, vectorized=any_vector))
    return CompiledProgram(program, logical_dims, compiled_nests)
