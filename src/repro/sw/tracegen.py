"""Trace generation: walk a compiled kernel, emit annotated requests.

This is where the compiler model meets the architecture model: every
static reference's orientation annotation and vectorization class (paper
Section V) become the per-request ``orientation`` / ``width`` bits the
ISA extension would carry (paper Section IV-B, "Application to ISA").

Vectorized nests are strip-mined by 8; a VECTOR ref emits one request
per oriented line its lane group touches (one when aligned, two when the
group straddles a line boundary, as in the +/-1-offset Sobel taps); a
SCALAR_HOISTED ref emits one scalar request per group; SCALAR_SERIAL
emits one per lane.  Loop tails and non-vectorized nests emit scalars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..common.types import (
    AccessWidth,
    Orientation,
    PackedTrace,
    Request,
    line_id_of,
)
from .layout import Layout, make_layout
from .program import Program
from .vectorizer import (
    CompiledNest,
    CompiledProgram,
    CompiledRef,
    VECTOR_LANES,
    VecClass,
    compile_program,
)


def generate_trace(program: Program, logical_dims: int = 2,
                   layout: Optional[Layout] = None) -> Iterator[Request]:
    """Requests for a whole program, compiled for ``logical_dims``.

    The layout defaults to the one matching the logical dimensionality
    (the paper always pairs them); passing a mismatched layout
    reproduces the ~2x slowdown experiment of Section IV-C Design 0.
    """
    compiled = compile_program(program, logical_dims)
    if layout is None:
        layout = make_layout(program.arrays, logical_dims)
    return trace_compiled(compiled, layout)


def generate_packed_trace(program: Program, logical_dims: int = 2,
                          layout: Optional[Layout] = None) -> PackedTrace:
    """Like :func:`generate_trace`, materialized into a packed buffer.

    This is the trace representation the simulator replays and the
    trace store persists: one 64-bit word per request, generated in a
    single pass over the kernel walk.
    """
    return PackedTrace.from_requests(
        generate_trace(program, logical_dims, layout))


def trace_compiled(compiled: CompiledProgram,
                   layout: Layout) -> Iterator[Request]:
    """Requests for an already-compiled program."""
    for cnest in compiled.nests:
        yield from _walk_nest(cnest, layout)


def _walk_nest(cnest: CompiledNest, layout: Layout) -> Iterator[Request]:
    yield from _walk_level(cnest, layout, level=0, env={})


def _walk_level(cnest: CompiledNest, layout: Layout, level: int,
                env: Dict[str, int]) -> Iterator[Request]:
    loops = cnest.nest.loops
    loop = loops[level]
    low = loop.lower.evaluate(env)
    high = loop.upper.evaluate(env)
    innermost = level == len(loops) - 1
    depth = level + 1
    if innermost:
        yield from _walk_innermost(cnest, layout, env, loop.var, low, high)
        return
    before = cnest.refs_at(depth, "before")
    after = cnest.refs_at(depth, "after")
    for value in range(low, high):
        env[loop.var] = value
        for cref in before:
            yield from _emit_scalar(cref, layout, env)
        yield from _walk_level(cnest, layout, level + 1, env)
        for cref in after:
            yield from _emit_scalar(cref, layout, env)
    env.pop(loop.var, None)


def _walk_innermost(cnest: CompiledNest, layout: Layout,
                    env: Dict[str, int], var: str, low: int,
                    high: int) -> Iterator[Request]:
    refs = cnest.innermost_refs()
    if not cnest.vectorized:
        for value in range(low, high):
            env[var] = value
            for cref in refs:
                yield from _emit_scalar(cref, layout, env)
        env.pop(var, None)
        return
    value = low
    while value + VECTOR_LANES <= high:
        env[var] = value
        for cref in refs:
            if cref.vec_class is VecClass.VECTOR:
                yield from _emit_vector(cref, layout, env, var)
            elif cref.vec_class is VecClass.SCALAR_HOISTED:
                yield from _emit_scalar(cref, layout, env)
            else:
                yield from _emit_serial(cref, layout, env, var)
        value += VECTOR_LANES
    # Loop tail: plain scalar iterations.
    for tail in range(value, high):
        env[var] = tail
        for cref in refs:
            yield from _emit_scalar(cref, layout, env)
    env.pop(var, None)


def _emit_scalar(cref: CompiledRef, layout: Layout,
                 env: Dict[str, int]) -> Iterator[Request]:
    addr = layout.address_of(cref.ref.array.name,
                             cref.ref.row.evaluate(env),
                             cref.ref.col.evaluate(env))
    yield Request(addr, cref.direction.orientation, AccessWidth.SCALAR,
                  cref.ref.is_write, cref.ref_id)


def _emit_serial(cref: CompiledRef, layout: Layout, env: Dict[str, int],
                 var: str) -> Iterator[Request]:
    base = env[var]
    for lane in range(VECTOR_LANES):
        env[var] = base + lane
        yield from _emit_scalar(cref, layout, env)
    env[var] = base


def _emit_vector(cref: CompiledRef, layout: Layout, env: Dict[str, int],
                 var: str) -> Iterator[Request]:
    """One request per oriented line the 8-lane group touches."""
    name = cref.ref.array.name
    orientation = cref.direction.orientation
    first = layout.address_of(name, cref.ref.row.evaluate(env),
                              cref.ref.col.evaluate(env))
    base = env[var]
    env[var] = base + VECTOR_LANES - 1
    last = layout.address_of(name, cref.ref.row.evaluate(env),
                             cref.ref.col.evaluate(env))
    env[var] = base
    yield Request(first, orientation, AccessWidth.VECTOR,
                  cref.ref.is_write, cref.ref_id)
    if line_id_of(last, orientation) != line_id_of(first, orientation):
        # Misaligned group: the tail lanes live in the next line.
        yield Request(last, orientation, AccessWidth.VECTOR,
                      cref.ref.is_write, cref.ref_id)


@dataclass
class TraceMix:
    """Access-type distribution by data volume (paper Fig. 10)."""

    row_scalar: int = 0
    row_vector: int = 0
    col_scalar: int = 0
    col_vector: int = 0

    @property
    def total(self) -> int:
        return (self.row_scalar + self.row_vector
                + self.col_scalar + self.col_vector)

    def fractions(self) -> Dict[str, float]:
        total = self.total or 1
        return {
            "row_scalar": self.row_scalar / total,
            "row_vector": self.row_vector / total,
            "col_scalar": self.col_scalar / total,
            "col_vector": self.col_vector / total,
        }

    @property
    def column_fraction(self) -> float:
        total = self.total or 1
        return (self.col_scalar + self.col_vector) / total


def trace_mix(trace: Iterator[Request]) -> TraceMix:
    """Tally a trace into the four Fig. 10 categories, by bytes."""
    mix = TraceMix()
    for req in trace:
        volume = 64 if req.width is AccessWidth.VECTOR else 8
        if req.orientation is Orientation.ROW:
            if req.width is AccessWidth.VECTOR:
                mix.row_vector += volume
            else:
                mix.row_scalar += volume
        elif req.width is AccessWidth.VECTOR:
            mix.col_vector += volume
        else:
            mix.col_scalar += volume
    return mix


def trace_length(program: Program, logical_dims: int = 2) -> int:
    """Number of requests a program generates (for sizing runs)."""
    return sum(1 for _ in generate_trace(program, logical_dims))


def materialize(trace: Iterator[Request]) -> List[Request]:
    """Realize a lazy trace (tests and multi-pass experiments)."""
    return list(trace)
