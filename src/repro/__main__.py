"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``       — designs, workloads, and experiments available.
* ``run``        — simulate one workload on one design and print stats.
* ``experiment`` — regenerate one of the paper's tables/figures.
* ``sweep``      — normalized cycles for every design at one LLC point.
* ``trace``      — generate a trace file from a workload, replay a
  trace file (text or packed binary) through a design, or convert
  between the two formats (``pack`` / ``cat``).
* ``journal``    — inspect a sweep's lifecycle journal
  (``OUTDIR/.runjournal/<suite>.jsonl``): what finished, what failed,
  what a dead sweep was doing when it stopped.
* ``serve``      — run the simulation service: an HTTP server that
  answers JSON simulation requests from the shared result cache,
  coalesces duplicates, and batches the rest through the supervisor
  (see ``docs/SERVICE.md``).

Exit codes: 0 success (including a ``serve`` drained by SIGTERM),
2 usage error, 3 a supervised sweep had permanently failed points,
130 interrupted by SIGINT/SIGTERM.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.simulator import run_simulation
from .core.system import DESIGN_NAMES, LLC_SIZES, make_system
from .workloads.registry import workload_names

_EXPERIMENTS = ("table1", "fig10", "fig11", "fig12", "fig13", "fig14",
                "fig15", "fig16", "fig17", "layout_mismatch",
                "future_tiling", "energy", "dynamic_orientation",
                "multiprogram", "tier_modes", "run_all")


def _cmd_list(_: argparse.Namespace) -> int:
    print("designs:    ", ", ".join(DESIGN_NAMES))
    print("workloads:  ", ", ".join(workload_names()))
    print("llc points: ", ", ".join(f"{mb}MB" for mb in
                                    sorted(LLC_SIZES)))
    print("experiments:", ", ".join(_EXPERIMENTS))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    system = make_system(args.design, args.llc)
    result = run_simulation(system, workload=args.workload,
                            size=args.size)
    if args.json:
        from .core.report import run_to_dict
        import json as _json
        print(_json.dumps(run_to_dict(result, args.stats), indent=2,
                          sort_keys=True))
        return 0
    print(result.describe())
    print(f"LLC requests: {result.llc_requests()}, memory bytes: "
          f"{result.memory_bytes()}")
    if args.stats:
        print()
        print(result.stats.report())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib
    import inspect
    if args.name not in _EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; known: "
              f"{', '.join(_EXPERIMENTS)}", file=sys.stderr)
        return 2
    module = importlib.import_module(f"repro.experiments.{args.name}")
    forwarded: List[str] = ["--outdir", args.outdir]
    if args.jobs != 1:
        forwarded += ["--jobs", str(args.jobs)]
    if args.no_cache:
        forwarded.append("--no-cache")
    if args.refresh:
        forwarded.append("--refresh")
    if args.resume:
        forwarded.append("--resume")
    if args.max_retries != 2:
        forwarded += ["--max-retries", str(args.max_retries)]
    if args.run_timeout is not None:
        forwarded += ["--run-timeout", str(args.run_timeout)]
    if args.inject_faults:
        forwarded += ["--inject-faults", args.inject_faults]
    if args.shards != 1:
        forwarded += ["--shards", str(args.shards)]
    # Profiling wraps the whole experiment here (not via a forwarded
    # flag) so it also covers experiments without a precomputable run
    # plan, whose mains take no arguments.
    from .common.profile_util import profiled
    with profiled(args.outdir, enabled=args.profile):
        if inspect.signature(module.main).parameters:
            module.main(forwarded)
        else:
            # Experiments without a precomputable run plan take no
            # flags.
            module.main()
    return 0


def _quarantined_entries(outdir: str) -> int:
    """Corrupt cache entries quarantined under ``OUTDIR/.runcache``."""
    import os
    from .experiments.runner import QUARANTINE_SUFFIX, RUNCACHE_DIRNAME
    cache_dir = os.path.join(outdir, RUNCACHE_DIRNAME)
    try:
        names = os.listdir(cache_dir)
    except OSError:
        return 0
    return sum(1 for name in names
               if name.endswith(QUARANTINE_SUFFIX))


def _cmd_journal(args: argparse.Namespace) -> int:
    import os
    from .experiments.supervisor import (
        JOURNAL_DIRNAME,
        RunJournal,
        replay_journal,
    )
    journal_dir = os.path.join(args.outdir, JOURNAL_DIRNAME)
    if args.suite is None:
        if not os.path.isdir(journal_dir):
            print(f"no journals under {journal_dir}", file=sys.stderr)
            return 2
        suites = sorted(name[:-len(".jsonl")]
                        for name in os.listdir(journal_dir)
                        if name.endswith(".jsonl"))
        if not suites:
            print(f"no journals under {journal_dir}", file=sys.stderr)
            return 2
        for suite in suites:
            state = replay_journal(
                RunJournal.for_suite(args.outdir, suite).path)
            counts = ", ".join(f"{count} {name}" for name, count
                               in sorted(state.counts().items()))
            flag = " [interrupted]" if state.interrupted else ""
            print(f"{suite}: {counts or 'empty'}{flag}")
        quarantined = _quarantined_entries(args.outdir)
        if quarantined:
            print(f"corrupt_quarantined: {quarantined} cache entries "
                  f"under {args.outdir}")
        return 0
    journal = RunJournal.for_suite(args.outdir, args.suite)
    if not journal.exists():
        print(f"no journal for suite {args.suite!r} under "
              f"{journal_dir}", file=sys.stderr)
        return 2
    state = journal.replay()
    print(f"journal: {journal.path}")
    print(f"events:  {state.events}"
          + (f" ({state.corrupt_lines} corrupt lines skipped)"
             if state.corrupt_lines else ""))
    if state.interrupted:
        print("status:  INTERRUPTED (resume with --resume)")
    quarantined = _quarantined_entries(args.outdir)
    if quarantined:
        print(f"corrupt_quarantined: {quarantined} cache entries")
    for name, count in sorted(state.counts().items()):
        print(f"  {name:<9} {count}")
    unfinished = state.in_state("running") + state.in_state("pending")
    shown = 0
    for ck in state.in_state("failed") + unfinished:
        key = state.keys.get(ck, {})
        label = "/".join(str(key.get(field, "?")) for field in
                         ("design", "workload", "size"))
        detail = state.errors.get(ck, state.states[ck])
        attempts = state.attempts.get(ck, 0)
        print(f"  {state.states[ck]:<9} {label} "
              f"(attempt {attempts}): {detail}")
        shown += 1
        if shown >= args.limit:
            remaining = len(state.in_state("failed")) \
                + len(unfinished) - shown
            if remaining > 0:
                print(f"  ... and {remaining} more")
            break
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import os

    from .experiments.plans import (
        runner_from_args,
        supervisor_from_args,
    )
    from .service.batching import SimulationService
    from .service.coalesce import ClaimBoard
    from .service.server import serve_main

    def build(index: int) -> SimulationService:
        """One worker's service stack (index -1 = single process).

        Called in the child after fork: the runner, supervisor, and
        journal must never exist in the master, whose only job is
        fork-and-supervise.  Each worker journals to its own suite
        file (concurrent appends to one JSONL would interleave), and
        multi-worker mode adds the cross-worker claim board over the
        shared run cache.
        """
        runner = runner_from_args(args, verbose=False)
        suite = "service" if index < 0 else f"service-w{index}"
        # The service owns SIGTERM/SIGINT (graceful drain); the
        # supervisor must not install handlers off the main thread.
        supervisor = supervisor_from_args(args, runner, suite=suite,
                                          handle_signals=False)
        board = None
        cache = runner.run_cache
        if index >= 0 and cache is not None and not args.refresh:
            board = ClaimBoard(cache.root,
                               owner=f"w{index}-pid{os.getpid()}")
        return SimulationService(runner, supervisor,
                                 max_pending=args.max_pending,
                                 max_batch=args.max_batch,
                                 batch_window=args.batch_window,
                                 claim_board=board)

    if args.workers > 1:
        from .experiments import faults
        from .service.master import PreforkMaster
        # Arm before forking so every worker inherits the same plan.
        if args.inject_faults:
            faults.arm(faults.parse_spec(args.inject_faults))
        master = PreforkMaster(build, workers=args.workers,
                               host=args.host, port=args.port,
                               outdir=args.outdir)
        return master.run()
    return serve_main(build(-1), host=args.host, port=args.port)


def _cmd_sweep(args: argparse.Namespace) -> int:
    baseline = run_simulation(make_system("1P1L", args.llc),
                              workload=args.workload, size=args.size)
    print(f"{args.workload} ({args.size}), LLC {args.llc}MB — "
          f"normalized to 1P1L ({baseline.cycles} cycles):")
    for design in DESIGN_NAMES:
        if design == "1P1L":
            continue
        result = run_simulation(make_system(design, args.llc),
                                workload=args.workload, size=args.size)
        print(f"  {design:<16} {result.cycles / baseline.cycles:.3f}")
    return 0


def _is_packed_trace(path: str) -> bool:
    from .sw.tracefile import PACKED_MAGIC
    try:
        with open(path, "rb") as handle:
            return handle.read(len(PACKED_MAGIC)) == PACKED_MAGIC
    except OSError:
        return False


def _cmd_trace(args: argparse.Namespace) -> int:
    from .core.simulator import run_trace
    from .sw.tracefile import (
        read_packed_trace,
        read_trace,
        write_packed_trace,
        write_trace,
    )
    from .sw.tracegen import generate_packed_trace, generate_trace
    from .workloads.registry import build_workload
    if args.action == "gen":
        program = build_workload(args.workload, args.size)
        dims = 2 if args.mda else 1
        if args.packed:
            trace = generate_packed_trace(program, dims)
            count = write_packed_trace(trace, args.file,
                                       name=args.workload)
            kind = "packed requests"
        else:
            count = write_trace(generate_trace(program, dims),
                                args.file)
            kind = "requests"
        print(f"wrote {count} {kind} to {args.file}")
        return 0
    if args.action == "pack":
        from .common.types import PackedTrace
        trace = PackedTrace.from_requests(read_trace(args.input))
        count = write_packed_trace(trace, args.output, name=args.input)
        print(f"packed {count} requests into {args.output}")
        return 0
    if args.action == "cat":
        name, trace = read_packed_trace(args.file)
        if args.output:
            count = write_trace(iter(trace), args.output)
        else:
            count = write_trace(iter(trace), sys.stdout)
        print(f"unpacked {count} requests from {args.file} "
              f"(name: {name})", file=sys.stderr)
        return 0
    # `trace run` replays either format; packed files are detected by
    # their magic and take the allocation-free replay loop.
    if _is_packed_trace(args.file):
        name, trace = read_packed_trace(args.file)
        result = run_trace(make_system(args.design, args.llc),
                           trace, name=name or args.file)
    else:
        result = run_trace(make_system(args.design, args.llc),
                           read_trace(args.file), name=args.file)
    print(result.describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MDACache (MICRO 2018) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list designs/workloads/experiments") \
        .set_defaults(func=_cmd_list)

    run_p = sub.add_parser("run", help="simulate one configuration")
    run_p.add_argument("design", choices=DESIGN_NAMES)
    run_p.add_argument("workload", choices=workload_names())
    run_p.add_argument("--size", choices=("small", "large"),
                       default="small")
    run_p.add_argument("--llc", type=float, default=1.0,
                       choices=sorted(LLC_SIZES))
    run_p.add_argument("--stats", action="store_true",
                       help="dump every counter")
    run_p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")
    run_p.set_defaults(func=_cmd_run)

    exp_p = sub.add_parser("experiment",
                           help="regenerate a paper table/figure")
    exp_p.add_argument("name")
    exp_p.add_argument("--jobs", "-j", type=int, default=1,
                       metavar="N",
                       help="simulate up to N points in parallel")
    exp_p.add_argument("--no-cache", action="store_true",
                       help="bypass the persistent run cache")
    exp_p.add_argument("--refresh", action="store_true",
                       help="re-simulate and overwrite cached points")
    exp_p.add_argument("--outdir", default="results",
                       help="results directory holding .runcache "
                            "(default: results)")
    exp_p.add_argument("--resume", action="store_true",
                       help="resume an interrupted sweep from its "
                            "journal")
    exp_p.add_argument("--max-retries", type=int, default=2,
                       metavar="N",
                       help="retry budget per run for transient "
                            "failures (default: 2)")
    exp_p.add_argument("--run-timeout", type=float, default=None,
                       metavar="SECS",
                       help="per-run wall-clock budget")
    exp_p.add_argument("--inject-faults", default=None,
                       metavar="SPEC",
                       help="deterministic fault injection spec "
                            "(e.g. worker_crash:0.1,seed:7)")
    exp_p.add_argument("--shards", type=int, default=1,
                       metavar="N",
                       help="split each trace into N window-aligned "
                            "cold-cache epochs, replayed in parallel "
                            "under --jobs and merged deterministically "
                            "(default: 1)")
    exp_p.add_argument("--profile", action="store_true",
                       help="profile the run under cProfile: dump "
                            "OUTDIR/profile.pstats and print the top "
                            "20 functions by cumulative time to "
                            "stderr; pool workers under --jobs N dump "
                            "per-worker profiles that merge into the "
                            "same file")
    exp_p.set_defaults(func=_cmd_experiment)

    journal_p = sub.add_parser(
        "journal", help="inspect a sweep's lifecycle journal")
    journal_p.add_argument("suite", nargs="?", default=None,
                           help="suite name (e.g. run_all, fig12); "
                                "omit to list all journals")
    journal_p.add_argument("--outdir", default="results",
                           help="results directory holding "
                                ".runjournal (default: results)")
    journal_p.add_argument("--limit", type=int, default=20,
                           metavar="N",
                           help="show at most N failed/unfinished "
                                "runs (default: 20)")
    journal_p.set_defaults(func=_cmd_journal)

    serve_p = sub.add_parser(
        "serve", help="run the simulation service (HTTP)")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8371,
                         help="bind port; 0 picks a free port "
                              "(default: 8371)")
    serve_p.add_argument("--max-pending", type=int, default=256,
                         metavar="N",
                         help="admission-queue bound; requests beyond "
                              "it get 429 (default: 256)")
    serve_p.add_argument("--max-batch", type=int, default=32,
                         metavar="N",
                         help="largest simulation batch dispatched to "
                              "the supervisor (default: 32)")
    serve_p.add_argument("--batch-window", type=float, default=0.02,
                         metavar="SECS",
                         help="wait after the first queued request so "
                              "concurrent requests share a batch "
                              "(default: 0.02)")
    serve_p.add_argument("--workers", type=int, default=1,
                         metavar="N",
                         help="serve from N pre-forked worker "
                              "processes supervised by a master "
                              "(restart on crash/hang, shared result "
                              "cache); 1 = single process "
                              "(default: 1)")
    from .experiments.plans import add_engine_arguments
    add_engine_arguments(serve_p)
    serve_p.set_defaults(func=_cmd_serve)

    sweep_p = sub.add_parser("sweep",
                             help="all designs on one workload")
    sweep_p.add_argument("workload", choices=workload_names())
    sweep_p.add_argument("--size", choices=("small", "large"),
                         default="small")
    sweep_p.add_argument("--llc", type=float, default=1.0,
                         choices=sorted(LLC_SIZES))
    sweep_p.set_defaults(func=_cmd_sweep)

    trace_p = sub.add_parser("trace",
                             help="trace file generate/replay/convert")
    trace_sub = trace_p.add_subparsers(dest="action", required=True)
    gen_p = trace_sub.add_parser("gen", help="generate a trace file")
    gen_p.add_argument("workload", choices=workload_names())
    gen_p.add_argument("file")
    gen_p.add_argument("--size", choices=("small", "large"),
                       default="small")
    gen_p.add_argument("--mda", action="store_true",
                       help="compile for the logically 2-D target")
    gen_p.add_argument("--packed", action="store_true",
                       help="write the packed binary format")
    gen_p.set_defaults(func=_cmd_trace, action="gen")
    run_p2 = trace_sub.add_parser(
        "run", help="replay a trace file (text or packed)")
    run_p2.add_argument("design", choices=DESIGN_NAMES)
    run_p2.add_argument("file")
    run_p2.add_argument("--llc", type=float, default=1.0,
                        choices=sorted(LLC_SIZES))
    run_p2.set_defaults(func=_cmd_trace, action="run")
    pack_p = trace_sub.add_parser(
        "pack", help="convert a text v1 trace to packed binary")
    pack_p.add_argument("input", help="text trace file (v1 format)")
    pack_p.add_argument("output", help="packed binary trace to write")
    pack_p.set_defaults(func=_cmd_trace, action="pack")
    cat_p = trace_sub.add_parser(
        "cat", help="convert a packed binary trace to text v1")
    cat_p.add_argument("file", help="packed binary trace file")
    cat_p.add_argument("output", nargs="?", default=None,
                       help="text trace to write (default: stdout)")
    cat_p.set_defaults(func=_cmd_trace, action="cat")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
