"""Duplicate-copy bookkeeping for logically 2-D caches (paper Fig. 9).

In a 1P2L cache a word can be resident in two intersecting lines (one
row, one column).  The paper's writeback-based policy allows duplication
only while every copy of a word is clean:

* *write to a duplicated word* evicts the other copy first, so
  modification happens to a sole copy ("Clean -> Invalid on Write to
  duplicate");
* *filling a line whose words are dirty in an intersecting line* forces
  that line's modifications back down first ("Modified -> Clean on Read
  to duplicate"), so the fill data is never stale.

The helpers here express the geometric queries and the invariant; the
cache class drives the transitions.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..common.types import (
    intersecting_line,
    line_id_parts,
    line_word_offset,
    line_words,
    perpendicular_lines,
)


def copies_of_word(frames: Dict[int, int], line_id: int,
                   word_id: int) -> List[int]:
    """Present lines holding ``word_id``, given one candidate line.

    A word belongs to exactly one row line and one column line; both are
    derivable from any line through the word.
    """
    other = intersecting_line(line_id, word_id)
    return [line for line in (line_id, other) if line in frames]


def dirty_at_intersection(frames: Dict[int, int], line_id: int,
                          perpendicular: int) -> bool:
    """True if ``perpendicular`` is present and dirty where it crosses
    ``line_id``.

    Along any oriented line, position ``k`` holds the word whose
    perpendicular in-tile index is ``k``, so the crossing word's offset
    within ``perpendicular`` is simply ``line_id``'s in-tile index.
    """
    mask = frames.get(perpendicular)
    if not mask:
        return False
    return bool(mask & (1 << (line_id & 7)))


def dirty_intersecting_lines(frames: Dict[int, int],
                             line_id: int) -> Iterator[int]:
    """Present perpendicular lines dirty at their crossing with
    ``line_id`` — the lines that must be cleaned before filling it."""
    bit = 1 << (line_id & 7)
    frames_get = frames.get
    for perp in perpendicular_lines(line_id):
        mask = frames_get(perp)
        if mask and mask & bit:
            yield perp


def present_intersecting_lines(frames: Dict[int, int],
                               line_id: int) -> List[int]:
    """All present perpendicular lines crossing ``line_id``."""
    return [perp for perp in perpendicular_lines(line_id)
            if perp in frames]


def _crossing_word(a: int, b: int) -> int:
    """Global word id where perpendicular lines ``a`` and ``b`` cross."""
    tile_a, orient_a, index_a = line_id_parts(a)
    tile_b, orient_b, index_b = line_id_parts(b)
    if tile_a != tile_b or orient_a is orient_b:
        raise ValueError("lines do not cross")
    words_a = line_words(a)
    # Along line a, position k holds the word whose perpendicular index
    # is k; the crossing is at b's in-tile index.
    return words_a[index_b]


def check_duplication_invariant(frames: Dict[int, int]) -> List[str]:
    """Validate the Fig. 9 invariant over a frame map.

    Returns a list of violation descriptions (empty when consistent):
    a word that is dirty in some line must not be present in any other
    line (i.e. the intersecting line must be absent).
    """
    violations: List[str] = []
    for line, mask in frames.items():
        if not mask:
            continue
        words = line_words(line)
        for offset, word in enumerate(words):
            if not mask & (1 << offset):
                continue
            other = intersecting_line(line, word)
            if other in frames:
                violations.append(
                    f"word {word} dirty in line {line:#x} while "
                    f"intersecting line {other:#x} is present")
    return violations


def duplicate_pairs(frames: Dict[int, int]) -> List[Tuple[int, int, int]]:
    """All (row_line, col_line, word) duplications currently present."""
    pairs: List[Tuple[int, int, int]] = []
    for line in frames:
        _, orientation, _ = line_id_parts(line)
        if orientation != 0:  # count each pair once, from the row side
            continue
        for word in line_words(line):
            other = intersecting_line(line, word)
            if other in frames:
                pairs.append((line, other, word))
    return pairs
