"""Design 1 building block: the physically 1-D, logically 2-D cache.

SRAM arrays hold dense 64-byte lines, but a line may be either a row
line (unit stride) or a column line (64-byte stride within one tile),
distinguished by an orientation bit in the metadata (paper Fig. 7).

Key mechanisms (paper Section IV-C, Design 1):

* **Index mapping** — ``different_set`` spreads the 8 rows / 8 columns of
  a tile over 8 sets (tag kept identical); ``same_set`` maps all 16
  lines of a tile into one set.  The taxonomy trade-off: Same-Set keeps
  both lookups in one set but "maps all rows and columns in a 2-D block
  into the same set, making it impractical for lower associativity".
* **Probe sequencing** — the preferred orientation is checked first; a
  preferred-orientation read hit returns with no added latency; checking
  the other orientation costs an extra tag access.  Writes always check
  both orientations (two sequential tag lookups).  A vector miss adds
  eight tag probes to find dirty intersecting lines; write misses pay the
  same overhead for potential eviction (paper Section VI-A).
* **Duplication policy** — the writeback-based state machine of Fig. 9,
  via :mod:`repro.cache.duplication`.  The invariant maintained is: a
  word dirty in one line is present in no other line.
* **Per-word dirty bits** — 8 bits per line to elide clean-word traffic
  on the extra writebacks caused by false sharing of intersecting lines.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..common.config import CacheLevelConfig
from ..common.errors import SimulationError
from ..common.stats import StatRegistry
from ..common.types import (
    AccessResult,
    AccessWidth,
    Orientation,
    Request,
    WORDS_PER_LINE,
    intersecting_line,
    line_id_of,
    line_id_parts,
    line_word_offset,
    line_words,
    perpendicular_lines,
)
from .base import FULL_MASK, CacheLevel
from .duplication import (
    check_duplication_invariant,
    present_intersecting_lines,
)
from .orientation_predictor import OrientationPredictor


class Cache1P2L(CacheLevel):
    """Orientation-tagged set-associative cache with duplication policy."""

    def __init__(self, config: CacheLevelConfig, level_index: int,
                 stats: StatRegistry, replacement: str = "lru") -> None:
        if config.logical_dims != 2 or config.physical_dims != 1:
            raise SimulationError("Cache1P2L requires a 1P2L config")
        super().__init__(config, level_index, stats, replacement)
        self._frames: Dict[int, int] = {}  # line_id -> dirty mask
        self._same_set = config.mapping == "same_set"
        self._data_write_latency = config.data_latency \
            + config.write_extra_latency
        self._c_hits = self._stats.counter("hits")
        self._c_misses = self._stats.counter("misses")
        self._c_misoriented = self._stats.counter("misoriented_hits")
        self._c_fetch_requests = self._stats.counter("fetch_requests")
        self._c_writebacks_in = self._stats.counter("writebacks_in")
        self._c_writebacks_out = self._stats.counter("writebacks_out")
        self._c_duplicate_cleans = self._stats.counter("duplicate_cleans")
        self._c_evictions = self._stats.counter("evictions")
        self._c_duplicate_evictions = \
            self._stats.counter("duplicate_evictions")
        self._predictor: Optional[OrientationPredictor] = None
        if config.dynamic_orientation:
            self._predictor = OrientationPredictor(
                stats.group(f"cache.{config.name}.orientation"))

    @property
    def predictor(self) -> Optional[OrientationPredictor]:
        """The dynamic-orientation predictor, if this level has one.

        The kernel engine mirrors it into flat arrays
        (:class:`repro.core.kernels._FlatPredictor`) sharing its
        counter cells."""
        return self._predictor

    # -- CPU-facing -------------------------------------------------------------

    def access(self, req: Request, now: int) -> AccessResult:
        a, b, c = self._demand_cells[(req.orientation << 2)
                                     | (req.width << 1) | req.is_write]
        a.value += 1
        b.value += 1
        c.value += 1
        if req.width is AccessWidth.SCALAR:
            orientation = req.orientation
            if self._predictor is not None:
                orientation = self._predictor.observe_and_predict(
                    req.ref_id, req.addr, req.orientation)
            if req.is_write:
                completion, level = self._scalar_write(req, now,
                                                       orientation)
            else:
                completion, level = self._scalar_read(req, now,
                                                      orientation)
        else:
            if req.is_write:
                completion, level = self._vector_write(req, now)
            else:
                completion, level = self._vector_read(req, now)
        if level == self._level:
            self._c_hits.value += 1
        else:
            self._c_misses.value += 1
        return AccessResult(latency=completion - now, hit_level=level)

    # -- scalar paths -------------------------------------------------------------

    def _scalar_read(self, req: Request, now: int,
                     orientation: Optional[Orientation] = None) \
            -> Tuple[int, int]:
        if orientation is None:
            orientation = req.orientation
        preferred = line_id_of(req.addr, orientation)
        self._c_tag_probes.value += 1
        if self._touch_if_present(preferred):
            return (self._data_ready(preferred, now) + self._hit_latency,
                    self._level)
        other = intersecting_line(preferred, req.word_id)
        self._c_tag_probes.value += 1
        if self._touch_if_present(other):
            # Word-presence hit in the mis-oriented line: one extra
            # sequential tag probe (paper: "the other orientation will be
            # checked, incurring additional cycles of latency").
            self._c_misoriented.value += 1
            return (self._data_ready(other, now) + self._hit_latency
                    + self._tag_latency, self._level)
        # Scalar miss: two tag probes were spent; fill along preference.
        probe_cost = 2 * self._tag_latency
        completion, level = self._fill_line(preferred, now + probe_cost,
                                            AccessWidth.SCALAR)
        return completion + self._data_latency, level

    def _scalar_write(self, req: Request, now: int,
                      orientation: Optional[Orientation] = None) \
            -> Tuple[int, int]:
        if orientation is None:
            orientation = req.orientation
        preferred = line_id_of(req.addr, orientation)
        word = req.word_id
        other = intersecting_line(preferred, word)
        probe_cost = 2 * self._tag_latency  # both orientations, sequential
        self._c_tag_probes.value += 2
        if preferred in self._frames:
            if other in self._frames:
                # Write to a duplicated word: evict the copy not being
                # written (Fig. 9, Clean -> Invalid).
                self._evict_line(other, now, duplicate=True)
            self._mark_dirty(preferred, 1 << line_word_offset(preferred,
                                                              word))
            self._touch(preferred)
            return (now + probe_cost + self._data_write_latency,
                    self._level)
        if other in self._frames:
            # Sole copy lives in the mis-oriented line; modify it there.
            self._c_misoriented.value += 1
            self._mark_dirty(other, 1 << line_word_offset(other, word))
            self._touch(other)
            return (now + probe_cost + self._data_write_latency,
                    self._level)
        # Write miss: allocate along the preference, then dirty the word.
        completion, level = self._fill_line(preferred, now + probe_cost,
                                            AccessWidth.SCALAR)
        self._mark_dirty(preferred, 1 << line_word_offset(preferred, word))
        return (completion + self._data_write_latency, level)

    # -- vector paths ----------------------------------------------------------------

    def _vector_read(self, req: Request, now: int) -> Tuple[int, int]:
        preferred = req.line_id
        self._c_tag_probes.value += 1
        if preferred in self._frames:
            # Inlined _touch_if_present + _data_ready fast path: the
            # L1 vector-read hit dominates replay time.
            if self._same_set:
                number = preferred >> 4
            else:
                number = (preferred >> 4) + (preferred & 7)
            self._sets[number % self._num_sets].touch(preferred)
            ready = self._ready_at.get(preferred)
            if ready is not None:
                if ready <= now:
                    del self._ready_at[preferred]
                else:
                    self._c_early_hit_waits.value += 1
                    return ready + self._hit_latency, self._level
            return now + self._hit_latency, self._level
        # Vector miss: eight additional probes for dirty intersecting
        # lines of the other orientation (paper Section VI-A).
        probe_cost = (1 + WORDS_PER_LINE) * self._tag_latency
        self._c_tag_probes.value += WORDS_PER_LINE
        completion, level = self._fill_line(preferred, now + probe_cost,
                                            AccessWidth.VECTOR)
        return completion + self._data_latency, level

    def _vector_write(self, req: Request, now: int) -> Tuple[int, int]:
        preferred = req.line_id
        probe_cost = (1 + WORDS_PER_LINE) * self._tag_latency
        self._c_tag_probes.value += 1 + WORDS_PER_LINE
        # All eight words become dirty, so every present intersecting
        # line is a duplicate that must go (Fig. 9).
        for perp in present_intersecting_lines(self._frames, preferred):
            self._evict_line(perp, now, duplicate=True)
        if preferred in self._frames:
            self._mark_dirty(preferred, FULL_MASK)
            self._touch(preferred)
            return (now + probe_cost + self._data_write_latency,
                    self._level)
        completion, level = self._fill_line(preferred, now + probe_cost,
                                            AccessWidth.VECTOR)
        self._mark_dirty(preferred, FULL_MASK)
        return completion + self._data_write_latency, level

    # -- inter-level protocol -----------------------------------------------------------

    def fetch_line(self, line_id: int, now: int,
                   width: AccessWidth) -> Tuple[int, int]:
        """Serve a fill request from the level above.

        Fill requests are line-granular, so only a correctly-oriented
        resident line is a hit here (an intersecting line can supply at
        most one of the eight words).
        """
        self._c_fetch_requests.value += 1
        self._c_tag_probes.value += 1
        if line_id in self._frames:
            if self._same_set:
                number = line_id >> 4
            else:
                number = (line_id >> 4) + (line_id & 7)
            self._sets[number % self._num_sets].touch(line_id)
            ready = self._ready_at.get(line_id)
            if ready is not None:
                if ready <= now:
                    del self._ready_at[line_id]
                else:
                    self._c_early_hit_waits.value += 1
                    return ready + self._hit_latency, self._level
            return now + self._hit_latency, self._level
        completion, level = self._fill_line(
            line_id, now + self._tag_latency, width)
        return completion + self._data_latency, level

    def writeback_line(self, line_id: int, dirty_mask: int,
                       now: int) -> int:
        """Absorb a dirty line from above, preserving the invariant."""
        self._c_writebacks_in.value += 1
        self._c_tag_probes.value += 2
        words = line_words(line_id)
        for offset in range(WORDS_PER_LINE):
            if not dirty_mask & (1 << offset):
                continue
            perp = intersecting_line(line_id, words[offset])
            if perp in self._frames:
                self._evict_line(perp, now, duplicate=True)
        # The line's *clean* words may duplicate perpendicular words
        # that are dirty here: those modifications must go down first
        # (Fig. 9, Modified -> Clean on "read to duplicate") so the
        # incoming copy may legally coexist.
        self._clean_intersecting(line_id, now)
        if line_id in self._frames:
            self._mark_dirty(line_id, dirty_mask)
            self._touch(line_id)
        else:
            self._install(line_id, now, dirty_mask)
        return now + 2 * self._tag_latency

    def orientation_occupancy(self) -> Tuple[int, int]:
        rows = sum(1 for line in self._frames
                   if line_id_parts(line)[1] == 0)
        return rows, len(self._frames) - rows

    def flush(self, now: int) -> None:
        for line_id, dirty in list(self._frames.items()):
            if dirty:
                self._c_writebacks_out.value += 1
                self._lower.writeback_line(line_id, dirty, now)
        self._frames.clear()
        for repl in self._sets:
            for key in repl.keys():
                repl.remove(key)

    # -- internals ------------------------------------------------------------------------

    def _set_number(self, line_id: int) -> int:
        if self._same_set:
            return line_id >> 4
        # Different-Set mapping (paper Fig. 8): the in-tile line index
        # participates in the set index, so the 8 rows / 8 columns of a
        # tile spread over different sets.  Adding (rather than
        # concatenating) the index keeps tile-id entropy in the low
        # bits even when the cache has fewer than 8 sets.  (Line-id
        # layout: tile << 4 | orientation << 3 | index.)
        return (line_id >> 4) + (line_id & 7)

    def _touch_if_present(self, line_id: int) -> bool:
        if line_id not in self._frames:
            return False
        if self._same_set:
            number = line_id >> 4
        else:
            number = (line_id >> 4) + (line_id & 7)
        self._sets[number % self._num_sets].touch(line_id)
        return True

    def _set_of(self, line_id: int) -> object:
        """The replacement set holding ``line_id`` (fused number+lookup)."""
        if self._same_set:
            number = line_id >> 4
        else:
            number = (line_id >> 4) + (line_id & 7)
        return self._sets[number % self._num_sets]

    def _touch(self, line_id: int) -> None:
        self._set_of(line_id).touch(line_id)

    def _mark_dirty(self, line_id: int, mask: int) -> None:
        self._frames[line_id] |= mask

    def _fill_line(self, line_id: int, now: int,
                   width: AccessWidth) -> Tuple[int, int]:
        """Clean dirty intersections, fetch from below, and install."""
        self._clean_intersecting(line_id, now)
        # Inlined _fetch_below (see base.CacheLevel): MSHR coalesce or
        # fetch from the lower level and record the fill.
        in_flight, aux = self._mshr_fetch_slot(
            line_id, now, self._needs_ordering)
        if in_flight is not None:
            self._c_mshr_coalesced.value += 1
            completion = in_flight if in_flight > now else now
            level = aux
        else:
            completion, level = self._lower.fetch_line(line_id, aux,
                                                       width)
            self._mshr_record(line_id, completion, level)
            self._c_fills.value += 1
        self._install(line_id, completion, dirty_mask=0)
        ready = completion + self._data_latency
        if ready > now:
            self._ready_at[line_id] = ready
        return completion, level

    def _clean_intersecting(self, line_id: int, now: int) -> None:
        """Fig. 9 "read to duplicate": push dirty crossings down first.

        Any perpendicular line dirty where it crosses ``line_id`` would
        make the incoming fill stale; its modifications are written back
        (the line stays resident, now clean) before the fill is issued.
        A perpendicular line crosses ``line_id`` at the offset equal to
        ``line_id``'s in-tile index, so one precomputed mask bit tests
        dirtiness for all eight candidates.
        """
        frames = self._frames
        bit = 1 << (line_id & 7)
        frames_get = frames.get
        for perp in perpendicular_lines(line_id):
            mask = frames_get(perp)
            if mask and mask & bit:
                self._lower.writeback_line(perp, mask, now)
                frames[perp] = 0
                self._c_duplicate_cleans.value += 1

    def _install(self, line_id: int, now: int, dirty_mask: int) -> None:
        if self._same_set:
            number = line_id >> 4
        else:
            number = (line_id >> 4) + (line_id & 7)
        repl = self._sets[number % self._num_sets]
        if len(repl) >= self._assoc:
            victim = repl.victim()
            self._evict_line(victim, now, duplicate=False)
        self._frames[line_id] = dirty_mask
        repl.insert(line_id)

    def _evict_line(self, line_id: int, now: int, duplicate: bool) -> None:
        mask = self._frames.pop(line_id)
        if self._same_set:
            number = line_id >> 4
        else:
            number = (line_id >> 4) + (line_id & 7)
        self._sets[number % self._num_sets].remove(line_id)
        if duplicate:
            self._c_duplicate_evictions.value += 1
        else:
            self._c_evictions.value += 1
        if mask:
            self._c_writebacks_out.value += 1
            self._lower.writeback_line(line_id, mask, now)

    # -- introspection ------------------------------------------------------------------------

    def contains(self, line_id: int) -> bool:
        return line_id in self._frames

    def dirty_mask_of(self, line_id: int) -> int:
        return self._frames.get(line_id, 0)

    def resident_lines(self) -> int:
        return len(self._frames)

    def check_invariants(self) -> None:
        """Raise if the Fig. 9 duplication invariant is violated."""
        violations = check_duplication_invariant(self._frames)
        if violations:
            raise SimulationError("; ".join(violations))
