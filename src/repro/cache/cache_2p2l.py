"""Design 2 building block: the physically & logically 2-D cache.

The data arrays are themselves MDA (crosspoint) memories, so the unit of
allocation is an 8-line x 8-line 512-byte 2-D block and a resident word
has exactly one physical copy — duplication and the Fig. 9 policy vanish
(paper Section IV-C, Design 2).  Metadata per block (paper Fig. 7,
bottom): 8 row-presence + 8 column-presence bits, and per-line dirty
bits in each direction to save writeback bandwidth.

Fill variants:

* **dense** — the whole 512-byte block streams in behind the line that
  missed ("all rows/columns within the 2-D block will follow after the
  one generating the initial miss");
* **sparse** — lines fill on demand, the footprint-cache-like variant
  the paper evaluates; writeback of never-filled lines is elided.

The block frames are modeled with STT write asymmetry via
``write_extra_latency`` (paper Fig. 16 adds 20 cycles to writes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..common.config import CacheLevelConfig
from ..common.errors import SimulationError
from ..common.stats import StatRegistry
from ..common.types import (
    AccessResult,
    AccessWidth,
    LINES_PER_TILE,
    Orientation,
    Request,
    line_id_parts,
    make_line_id,
    tile_coords,
)
from .base import FULL_MASK, CacheLevel


#: Width of one packed per-block bit word: rows in bits 0-7, columns in
#: bits 8-15 — i.e. bit ``orientation << 3 | index``, matching the low
#: four bits of a line id (``line & 15``).  The kernel mirror
#: (:class:`repro.core.kernels._Kernel2P2L`) keeps one presence word
#: and one dirty word per block slot in exactly this layout.
PACKED_WORD_BITS = 16
PACKED_WORD_MASK = (1 << PACKED_WORD_BITS) - 1


def pack_block_word(rows: int, cols: int) -> int:
    """Pack per-direction 8-bit masks into one 16-bit block word."""
    return (rows & FULL_MASK) | ((cols & FULL_MASK) << 8)


def unpack_block_word(word: int) -> Tuple[int, int]:
    """Split a packed 16-bit block word back into (rows, cols)."""
    return word & FULL_MASK, (word >> 8) & FULL_MASK


@dataclass
class BlockState:
    """Presence and dirty masks for one resident 2-D block."""

    rows_present: int = 0
    cols_present: int = 0
    rows_dirty: int = 0
    cols_dirty: int = 0

    def presence_word(self) -> int:
        """This block's presence masks as one packed 16-bit word."""
        return pack_block_word(self.rows_present, self.cols_present)

    def dirty_word(self) -> int:
        """This block's dirty masks as one packed 16-bit word."""
        return pack_block_word(self.rows_dirty, self.cols_dirty)

    @classmethod
    def from_words(cls, presence: int, dirty: int) -> "BlockState":
        """Rebuild a block from its packed presence and dirty words."""
        rows_present, cols_present = unpack_block_word(presence)
        rows_dirty, cols_dirty = unpack_block_word(dirty)
        return cls(rows_present=rows_present, cols_present=cols_present,
                   rows_dirty=rows_dirty, cols_dirty=cols_dirty)

    def present(self, orientation: Orientation, index: int) -> bool:
        mask = (self.rows_present if orientation is Orientation.ROW
                else self.cols_present)
        return bool(mask & (1 << index))

    def word_covered(self, r: int, c: int) -> bool:
        """True if the cell (r, c) is resident via either direction."""
        return bool((self.rows_present & (1 << r))
                    or (self.cols_present & (1 << c)))

    def mark_present(self, orientation: Orientation, index: int) -> None:
        if orientation is Orientation.ROW:
            self.rows_present |= 1 << index
        else:
            self.cols_present |= 1 << index

    def mark_dirty(self, orientation: Orientation, index: int) -> None:
        self.mark_present(orientation, index)
        if orientation is Orientation.ROW:
            self.rows_dirty |= 1 << index
        else:
            self.cols_dirty |= 1 << index

    def fully_present(self) -> bool:
        return (self.rows_present == FULL_MASK
                or self.cols_present == FULL_MASK)


class Cache2P2L(CacheLevel):
    """2-D-block cache over an on-chip crosspoint array."""

    def __init__(self, config: CacheLevelConfig, level_index: int,
                 stats: StatRegistry, replacement: str = "lru") -> None:
        if config.logical_dims != 2 or config.physical_dims != 2:
            raise SimulationError("Cache2P2L requires a 2P2L config")
        super().__init__(config, level_index, stats, replacement)
        self._blocks: Dict[int, BlockState] = {}
        self._sparse = config.sparse_fill
        # Pre-bound counter cells: faster on the protocol paths, and
        # pre-creation keeps the stat key set identical to the kernel
        # mirror (which binds the same keys up front).
        self._c_hits = self._stats.counter("hits")
        self._c_misses = self._stats.counter("misses")
        self._c_fetch_requests = self._stats.counter("fetch_requests")
        self._c_cross_direction_hits = \
            self._stats.counter("cross_direction_hits")
        self._c_partial_block_hits = \
            self._stats.counter("partial_block_hits")
        self._c_writebacks_in = self._stats.counter("writebacks_in")
        self._c_writebacks_out = self._stats.counter("writebacks_out")
        self._c_dense_fill_lines = \
            self._stats.counter("dense_fill_lines")
        self._c_evictions = self._stats.counter("evictions")

    # -- CPU-facing (Design 3 / future-work support) ---------------------------

    def access(self, req: Request, now: int) -> AccessResult:
        self._count_demand(req)
        line = req.line_id
        tile, orientation, index = line_id_parts(line)
        self._probe()
        block = self._blocks.get(tile)
        r, c = tile_coords(req.addr)
        hit = False
        if block is not None:
            if req.width is AccessWidth.SCALAR:
                hit = block.word_covered(r, c)
            else:
                hit = block.present(orientation, index) \
                    or block.fully_present()
        if hit:
            self._touch(tile)
            self._c_hits.value += 1
            if req.is_write:
                self._mark_write(block, orientation, index, r, c,
                                 req.width)
                return AccessResult(self._write_latency, self._level)
            return AccessResult(self._hit_latency, self._level)
        self._c_misses.value += 1
        probe = self._tag_latency
        completion, level = self._fill_line_into_block(line, now + probe,
                                                       req.width)
        block = self._blocks[tile]
        if req.is_write:
            self._mark_write(block, orientation, index, r, c, req.width)
            latency = completion - now + self._cfg.write_extra_latency
        else:
            latency = completion - now + self._cfg.data_latency
        return AccessResult(latency, hit_level=level)

    def _mark_write(self, block: BlockState, orientation: Orientation,
                    index: int, r: int, c: int,
                    width: AccessWidth) -> None:
        """Dirty the written cell(s) in whichever direction holds them."""
        if width is AccessWidth.VECTOR or block.present(orientation, index):
            block.mark_dirty(orientation, index)
        elif orientation is Orientation.ROW:
            # Word resides only via its column line; dirty that line.
            block.mark_dirty(Orientation.COLUMN, c)
        else:
            block.mark_dirty(Orientation.ROW, r)

    # -- inter-level protocol ----------------------------------------------------

    def fetch_line(self, line_id: int, now: int,
                   width: AccessWidth) -> Tuple[int, int]:
        self._c_fetch_requests.value += 1
        self._probe()
        tile, orientation, index = line_id_parts(line_id)
        block = self._blocks.get(tile)
        if block is not None:
            if block.present(orientation, index):
                self._touch(tile)
                return (self._data_ready(line_id, now)
                        + self._hit_latency, self._level)
            if block.fully_present():
                # Every word is resident via the other direction; the
                # crosspoint array can stream it out either way.
                block.mark_present(orientation, index)
                self._touch(tile)
                self._c_cross_direction_hits.value += 1
                return now + self._hit_latency, self._level
            self._c_partial_block_hits.value += 1
        completion, level = self._fill_line_into_block(
            line_id, now + self._tag_latency, width)
        return completion + self._cfg.data_latency, level

    def writeback_line(self, line_id: int, dirty_mask: int,
                       now: int) -> int:
        self._c_writebacks_in.value += 1
        self._probe()
        tile, orientation, index = line_id_parts(line_id)
        block = self._blocks.get(tile)
        if block is None:
            block = self._allocate_block(tile, now)
            if not self._sparse:
                # Dense blocks must be complete: stream in the rest of
                # the block before absorbing the line (the costly case
                # sparse fill exists to avoid, paper Section IV-C).
                self._fill_whole_block(tile, orientation, now,
                                       skip_index=index)
        else:
            self._touch(tile)
        block.mark_dirty(orientation, index)
        return now + self._tag_latency + self._cfg.write_extra_latency

    def orientation_occupancy(self) -> Tuple[int, int]:
        rows = sum(bin(b.rows_present).count("1")
                   for b in self._blocks.values())
        cols = sum(bin(b.cols_present).count("1")
                   for b in self._blocks.values())
        return rows, cols

    def flush(self, now: int) -> None:
        for tile in list(self._blocks):
            self._set_for(tile).remove(tile)
            self._evict_block(tile, now)

    # -- internals ------------------------------------------------------------------

    def _touch(self, tile: int) -> None:
        self._set_for(tile).touch(tile)

    def _fill_line_into_block(self, line_id: int, now: int,
                              width: AccessWidth) -> Tuple[int, int]:
        """Fetch a line; allocate its block first when needed."""
        tile, orientation, index = line_id_parts(line_id)
        block = self._blocks.get(tile)
        if block is None:
            block = self._allocate_block(tile, now)
        else:
            self._touch(tile)
        completion, level = self._fetch_below(line_id, now, width)
        # Filling writes the crosspoint array; asymmetric technologies
        # pay their write latency here (paper Fig. 16).
        completion += self._cfg.write_extra_latency
        block.mark_present(orientation, index)
        self._note_ready(line_id, completion + self._cfg.data_latency,
                         now)
        if not self._sparse:
            self._fill_whole_block(tile, orientation, completion,
                                   skip_index=index)
        return completion, level

    def _fill_whole_block(self, tile: int, orientation: Orientation,
                          now: int, skip_index: int) -> None:
        """Dense fill: stream the remaining lines behind the first one."""
        block = self._blocks[tile]
        horizon = now
        for k in range(LINES_PER_TILE):
            if k == skip_index:
                continue
            line = make_line_id(tile, orientation, k)
            horizon, _ = self._fetch_below(line, horizon,
                                           AccessWidth.VECTOR)
            self._c_dense_fill_lines.value += 1
        block.rows_present = FULL_MASK
        block.cols_present = FULL_MASK

    def _allocate_block(self, tile: int, now: int) -> BlockState:
        repl = self._set_for(tile)
        if len(repl) >= self._cfg.assoc:
            victim = repl.victim()
            repl.remove(victim)
            self._evict_block(victim, now)
        block = BlockState()
        self._blocks[tile] = block
        repl.insert(tile)
        return block

    def _evict_block(self, tile: int, now: int) -> None:
        """Write back every dirty line of the victim block.

        Never-filled lines have no dirty bits, so sparse blocks elide
        their writeback automatically.
        """
        block = self._blocks.pop(tile)
        self._c_evictions.value += 1
        for orientation, dirty in ((Orientation.ROW, block.rows_dirty),
                                   (Orientation.COLUMN, block.cols_dirty)):
            for k in range(LINES_PER_TILE):
                if dirty & (1 << k):
                    line = make_line_id(tile, orientation, k)
                    self._c_writebacks_out.value += 1
                    self._lower.writeback_line(line, FULL_MASK, now)

    # -- introspection ---------------------------------------------------------------

    def contains_block(self, tile: int) -> bool:
        return tile in self._blocks

    def block_state(self, tile: int) -> BlockState:
        return self._blocks[tile]

    def resident_blocks(self) -> int:
        return len(self._blocks)

    def check_invariants(self) -> None:
        """Dirty lines must be present; presence masks are 8-bit."""
        for tile, block in self._blocks.items():
            if block.rows_dirty & ~block.rows_present:
                raise SimulationError(
                    f"block {tile}: dirty row line not present")
            if block.cols_dirty & ~block.cols_present:
                raise SimulationError(
                    f"block {tile}: dirty column line not present")
            for mask in (block.rows_present, block.cols_present,
                         block.rows_dirty, block.cols_dirty):
                if mask & ~FULL_MASK:
                    raise SimulationError(
                        f"block {tile}: mask wider than 8 bits")
