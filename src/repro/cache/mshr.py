"""2-D miss status holding registers (paper Section IV-B).

The MSHR file does two jobs:

* **Coalescing** — a miss to an oriented line that already has an
  outstanding fill joins that fill instead of generating new traffic.
  This is the mechanism behind "many misses to the same column are
  combined into one column access in the MSHR" (paper Section VII).
* **2-D ordering** — "transactions that have overlapping words should be
  ordered, even if the access directions are different.  ...  any
  overlapping writes are blocked in the MSHR until the previous
  overlapping accesses have finished."  Overlap between oriented lines is
  geometric: same line, or perpendicular lines of the same tile.

Entries are keyed by oriented line id and record the absolute completion
time of the fill.  Because the surrounding model is trace-driven, entries
whose completion time has passed are retired lazily.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..common.stats import StatGroup
from ..common.types import line_id_parts


class MshrFile:
    """Outstanding-miss tracking for one cache level."""

    def __init__(self, entries: int, stats: StatGroup) -> None:
        if entries < 1:
            raise ValueError("MSHR file needs at least one entry")
        self._capacity = entries
        self._stats = stats
        # line_id -> (completion time, serving level) of the in-flight fill
        self._pending: Dict[int, Tuple[int, int]] = {}
        # Lower bound on the earliest pending completion; lets the hot
        # paths skip scanning the file when nothing can have retired yet.
        self._earliest: Optional[int] = None

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def capacity(self) -> int:
        return self._capacity

    def retire_completed(self, now: int) -> None:
        """Drop entries whose fills have already completed."""
        if not self._pending:
            return
        if self._earliest is not None and now < self._earliest:
            return
        done = []
        earliest: Optional[int] = None
        for line, (at, _) in self._pending.items():
            if at <= now:
                done.append(line)
            elif earliest is None or at < earliest:
                earliest = at
        for line in done:
            del self._pending[line]
        self._earliest = earliest

    def outstanding_fill(self, line_id: int,
                         now: int) -> Optional[Tuple[int, int]]:
        """(completion, serving level) of an in-flight fill, if any."""
        self.retire_completed(now)
        return self._pending.get(line_id)

    def ordering_barrier(self, line_id: int, now: int) -> int:
        """Earliest time a new access overlapping ``line_id`` may proceed.

        Returns ``now`` when nothing overlaps.  Perpendicular outstanding
        lines in the same tile count as overlapping (2-D ordering).
        """
        self.retire_completed(now)
        if not self._pending:
            return now
        tile, orientation, _ = line_id_parts(line_id)
        barrier = now
        for other, (at, _) in self._pending.items():
            if other == line_id:
                barrier = max(barrier, at)
                continue
            other_tile, other_orient, _ = line_id_parts(other)
            if other_tile == tile and other_orient is not orientation:
                barrier = max(barrier, at)
                self._stats.add("ordering_blocks")
        return barrier

    def allocate(self, line_id: int, now: int) -> int:
        """Reserve an entry for a new fill; returns the issue time.

        When the file is full, the new miss stalls until the earliest
        outstanding fill retires (structural hazard), which delays its
        issue time.  The caller must follow up with :meth:`record` once
        the fill's completion time is known.
        """
        self.retire_completed(now)
        issue = now
        while len(self._pending) >= self._capacity:
            # A structural stall waits exactly until the oldest fill
            # lands (exact minimum; _earliest is only a lower bound).
            earliest = min(at for at, _ in self._pending.values())
            issue = max(issue, earliest)
            self._stats.add("full_stalls")
            self.retire_completed(earliest)
        self._pending[line_id] = (issue, 0)
        self._note_bound(issue)
        self._stats.add("allocations")
        return issue

    def record(self, line_id: int, completion: int, level: int) -> None:
        """Set an entry's completion time and serving level."""
        self._pending[line_id] = (completion, level)
        self._note_bound(completion)

    def _note_bound(self, value: int) -> None:
        if self._earliest is None or value < self._earliest:
            self._earliest = value

    def clear(self) -> None:
        self._pending.clear()
        self._earliest = None
