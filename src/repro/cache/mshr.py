"""2-D miss status holding registers (paper Section IV-B).

The MSHR file does two jobs:

* **Coalescing** — a miss to an oriented line that already has an
  outstanding fill joins that fill instead of generating new traffic.
  This is the mechanism behind "many misses to the same column are
  combined into one column access in the MSHR" (paper Section VII).
* **2-D ordering** — "transactions that have overlapping words should be
  ordered, even if the access directions are different.  ...  any
  overlapping writes are blocked in the MSHR until the previous
  overlapping accesses have finished."  Overlap between oriented lines is
  geometric: same line, or perpendicular lines of the same tile.

Entries are keyed by oriented line id and record the absolute completion
time of the fill.  Because the surrounding model is trace-driven, entries
whose completion time has passed are retired lazily.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..common.stats import StatGroup


class MshrFile:
    """Outstanding-miss tracking for one cache level."""

    def __init__(self, entries: int, stats: StatGroup) -> None:
        if entries < 1:
            raise ValueError("MSHR file needs at least one entry")
        self._capacity = entries
        self._stats = stats
        # line_id -> (completion time, serving level) of the in-flight fill
        self._pending: Dict[int, Tuple[int, int]] = {}
        # Lower bound on the earliest pending completion; lets the hot
        # paths skip scanning the file when nothing can have retired yet.
        self._earliest: Optional[int] = None
        # Pre-bound counter cells for the per-miss path.
        self._c_ordering_blocks = stats.counter("ordering_blocks")
        self._c_full_stalls = stats.counter("full_stalls")
        self._c_allocations = stats.counter("allocations")

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def capacity(self) -> int:
        return self._capacity

    def retire_completed(self, now: int) -> None:
        """Drop entries whose fills have already completed."""
        if not self._pending:
            return
        if self._earliest is not None and now < self._earliest:
            return
        done = []
        earliest: Optional[int] = None
        for line, (at, _) in self._pending.items():
            if at <= now:
                done.append(line)
            elif earliest is None or at < earliest:
                earliest = at
        for line in done:
            del self._pending[line]
        self._earliest = earliest

    def outstanding_fill(self, line_id: int,
                         now: int) -> Optional[Tuple[int, int]]:
        """(completion, serving level) of an in-flight fill, if any."""
        self.retire_completed(now)
        return self._pending.get(line_id)

    def ordering_barrier(self, line_id: int, now: int) -> int:
        """Earliest time a new access overlapping ``line_id`` may proceed.

        Returns ``now`` when nothing overlaps.  Perpendicular outstanding
        lines in the same tile count as overlapping (2-D ordering).
        """
        self.retire_completed(now)
        if not self._pending:
            return now
        # Work on raw line-id bits: perpendicular-in-same-tile means the
        # ids agree above the orientation bit and differ in it, i.e.
        # (a ^ b) >> 3 == 1 (the in-tile index bits are ignored).
        key = line_id >> 3
        barrier = now
        for other, (at, _) in self._pending.items():
            if other == line_id:
                if at > barrier:
                    barrier = at
                continue
            if (other >> 3) ^ key == 1:
                if at > barrier:
                    barrier = at
                self._stats.add("ordering_blocks")
        return barrier

    def fetch_slot(self, line_id: int, now: int,
                   ordered: bool) -> Tuple[Optional[int], int]:
        """Coalesce with an in-flight fill or reserve a new entry.

        The fused fast path of ``outstanding_fill`` + ``ordering_barrier``
        + ``allocate``: one lazy-retire pass instead of three.  Returns
        an in-flight ``(completion, level)`` when an outstanding fill to
        the same line absorbs this request, or ``(None, issue)`` when
        the caller must fetch below and :meth:`record` the completion.
        Statistics match the three-call sequence exactly.
        """
        # Inlined retire_completed.  _earliest is maintained exactly,
        # so the scan runs only when at least one entry really retires.
        pending = self._pending
        earliest_bound = self._earliest
        if earliest_bound is not None and now >= earliest_bound \
                and pending:
            done = []
            earliest_bound = None
            for line, (at, _) in pending.items():
                if at <= now:
                    done.append(line)
                elif earliest_bound is None or at < earliest_bound:
                    earliest_bound = at
            for line in done:
                del pending[line]
            self._earliest = earliest_bound
        entry = pending.get(line_id)
        if entry is not None:
            return entry
        issue = now
        if ordered and pending:
            # 2-D ordering barrier on raw line-id bits (see
            # ordering_barrier); line_id itself cannot be pending here.
            key = line_id >> 3
            for other, (at, _) in pending.items():
                if (other >> 3) ^ key == 1:
                    if at > issue:
                        issue = at
                    self._c_ordering_blocks.value += 1
            if issue > now:
                self.retire_completed(issue)
        while len(pending) >= self._capacity:
            earliest = min(at for at, _ in pending.values())
            if earliest > issue:
                issue = earliest
            self._c_full_stalls.value += 1
            self.retire_completed(earliest)
        pending[line_id] = (issue, 0)
        if self._earliest is None or issue < self._earliest:
            self._earliest = issue
        self._c_allocations.value += 1
        return None, issue

    def allocate(self, line_id: int, now: int) -> int:
        """Reserve an entry for a new fill; returns the issue time.

        When the file is full, the new miss stalls until the earliest
        outstanding fill retires (structural hazard), which delays its
        issue time.  The caller must follow up with :meth:`record` once
        the fill's completion time is known.
        """
        self.retire_completed(now)
        issue = now
        while len(self._pending) >= self._capacity:
            # A structural stall waits exactly until the oldest fill
            # lands (exact minimum; _earliest is only a lower bound).
            earliest = min(at for at, _ in self._pending.values())
            issue = max(issue, earliest)
            self._stats.add("full_stalls")
            self.retire_completed(earliest)
        self._pending[line_id] = (issue, 0)
        self._note_bound(issue)
        self._stats.add("allocations")
        return issue

    def record(self, line_id: int, completion: int, level: int) -> None:
        """Set an entry's completion time and serving level."""
        self._pending[line_id] = (completion, level)
        self._note_bound(completion)

    def _note_bound(self, value: int) -> None:
        if self._earliest is None or value < self._earliest:
            self._earliest = value

    def clear(self) -> None:
        self._pending.clear()
        self._earliest = None
