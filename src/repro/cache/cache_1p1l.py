"""Design 0 building block: the conventional 1P1L cache.

Physically and logically one-dimensional: every resident line is a
row-oriented 64-byte line, and the only way to consume a column-major
traversal is one strided scalar access per element.  This is the paper's
baseline, evaluated *with* a stride prefetcher attached (paper Section
VII: "the baseline 1P1L cache hierarchy is evaluated with prefetching
enabled").
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..common.config import CacheLevelConfig
from ..common.errors import SimulationError
from ..common.stats import StatRegistry
from ..common.types import (
    AccessResult,
    AccessWidth,
    Orientation,
    Request,
    line_base_addr,
    line_id_parts,
    line_word_offset,
)
from .base import FULL_MASK, CacheLevel
from .prefetcher import StridePrefetcher


def _row_line_number(line_id: int) -> int:
    """Dense index of a row line (for set selection).

    Line-id layout is ``tile << 4 | orientation << 3 | index``; a row
    line has the orientation bit clear.
    """
    if line_id & 8:
        raise SimulationError("1P1L cache touched with a column line")
    return ((line_id >> 4) << 3) | (line_id & 7)


class Cache1P1L(CacheLevel):
    """Conventional set-associative writeback cache with row lines only."""

    def __init__(self, config: CacheLevelConfig, level_index: int,
                 stats: StatRegistry, replacement: str = "lru") -> None:
        super().__init__(config, level_index, stats, replacement)
        # line_id -> dirty mask (presence in the dict == valid)
        self._frames: Dict[int, int] = {}
        self._prefetcher = StridePrefetcher(
            config.prefetcher,
            stats.group(f"cache.{config.name}.prefetch"))
        self._c_hits = self._stats.counter("hits")
        self._c_misses = self._stats.counter("misses")
        self._c_fetch_requests = self._stats.counter("fetch_requests")
        self._c_prefetch_fills = self._stats.counter("prefetch_fills")
        self._c_writebacks_in = self._stats.counter("writebacks_in")
        self._c_writebacks_out = self._stats.counter("writebacks_out")
        self._c_evictions = self._stats.counter("evictions")
        self._prefetch_enabled = config.prefetcher.enabled

    @property
    def prefetcher(self) -> StridePrefetcher:
        """The level's stride prefetcher (shared with the kernel path)."""
        return self._prefetcher

    # -- CPU-facing -----------------------------------------------------------

    def access(self, req: Request, now: int) -> AccessResult:
        if req.orientation is not Orientation.ROW:
            raise SimulationError(
                "column-preference request reached a 1P1L cache; design-0 "
                "traces must be generated with logical_dims=1")
        a, b, c = self._demand_cells[(req.width << 1) | req.is_write]
        a.value += 1
        b.value += 1
        c.value += 1
        line = req.line_id
        dirty_mask = self._write_mask(req) if req.is_write else 0
        completion, level = self._get_line(line, now, req.width, dirty_mask)
        if level == self._level:
            self._c_hits.value += 1
        else:
            self._c_misses.value += 1
        self._run_prefetcher(req, now)
        return AccessResult(latency=completion - now, hit_level=level)

    @staticmethod
    def _write_mask(req: Request) -> int:
        if req.width is AccessWidth.VECTOR:
            return FULL_MASK
        return 1 << line_word_offset(req.line_id, req.word_id)

    # -- inter-level protocol --------------------------------------------------

    def fetch_line(self, line_id: int, now: int,
                   width: AccessWidth) -> Tuple[int, int]:
        self._c_fetch_requests.value += 1
        result = self._get_line(line_id, now, width, dirty_mask=0)
        # Lower-level prefetchers train on the miss stream arriving
        # from above (the classic L2/LLC stride-prefetcher placement:
        # the upper level filters its hits, leaving mostly-regular
        # streams here, and prefetch pollution lands in a large array).
        self._train_stream_prefetcher(line_id, now)
        return result

    def _train_stream_prefetcher(self, line_id: int, now: int) -> None:
        if not self._prefetch_enabled:
            return
        addr = line_base_addr(line_id)
        for line in self._prefetcher.observe(0, addr):
            if line in self._frames:
                continue
            if self._mshr.outstanding_fill(line, now) is not None:
                continue
            completion, _ = self._fetch_below(line, now,
                                              AccessWidth.VECTOR)
            self._install(line, completion, dirty_mask=0)
            self._note_ready(line, completion + self._cfg.data_latency,
                             now)
            self._c_prefetch_fills.value += 1

    def writeback_line(self, line_id: int, dirty_mask: int,
                       now: int) -> int:
        self._c_writebacks_in.value += 1
        self._probe()
        if line_id in self._frames:
            self._frames[line_id] |= dirty_mask
            self._set_for(_row_line_number(line_id)).touch(line_id)
        else:
            self._install(line_id, now, dirty_mask)
        return now + self._tag_latency

    def orientation_occupancy(self) -> Tuple[int, int]:
        return len(self._frames), 0

    def flush(self, now: int) -> None:
        for line_id, dirty in list(self._frames.items()):
            if dirty:
                self._c_writebacks_out.value += 1
                self._lower.writeback_line(line_id, dirty, now)
        self._frames.clear()
        for repl in self._sets:
            for key in repl.keys():
                repl.remove(key)

    # -- internals --------------------------------------------------------------

    def _get_line(self, line_id: int, now: int, width: AccessWidth,
                  dirty_mask: int) -> Tuple[int, int]:
        """Serve a line: hit fast path, or fill through the MSHR."""
        self._c_tag_probes.value += 1
        if line_id in self._frames:
            self._frames[line_id] |= dirty_mask
            self._sets[_row_line_number(line_id)
                       % self._num_sets].touch(line_id)
            latency = self._write_latency if dirty_mask else self._hit_latency
            return self._data_ready(line_id, now) + latency, self._level
        completion, level = self._fetch_below(
            line_id, now + self._tag_latency, width)
        self._install(line_id, completion, dirty_mask)
        done = completion + self._data_latency
        self._note_ready(line_id, done, now)
        return done, level

    def _install(self, line_id: int, now: int, dirty_mask: int) -> None:
        """Place a line, evicting the set victim when needed."""
        repl = self._set_for(_row_line_number(line_id))
        if len(repl) >= self._assoc:
            victim = repl.victim()
            repl.remove(victim)
            victim_dirty = self._frames.pop(victim)
            self._c_evictions.value += 1
            if victim_dirty:
                self._c_writebacks_out.value += 1
                self._lower.writeback_line(victim, victim_dirty, now)
        self._frames[line_id] = dirty_mask
        repl.insert(line_id)

    def _run_prefetcher(self, req: Request, now: int) -> None:
        """Train on the demand stream; issue fills for predicted lines."""
        for line in self._prefetcher.observe(req.ref_id, req.addr):
            if line in self._frames:
                continue
            if self._mshr.outstanding_fill(line, now) is not None:
                continue
            completion, _ = self._fetch_below(line, now, AccessWidth.VECTOR)
            self._install(line, completion, dirty_mask=0)
            self._note_ready(line, completion + self._cfg.data_latency,
                             now)
            self._c_prefetch_fills.value += 1

    # -- introspection ------------------------------------------------------------

    def contains(self, line_id: int) -> bool:
        return line_id in self._frames

    def resident_lines(self) -> int:
        return len(self._frames)
