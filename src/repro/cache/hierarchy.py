"""Assembles a cache hierarchy from a :class:`SystemConfig`.

Maps taxonomy points to classes (paper Section IV-C):

* ``1P1L`` -> :class:`Cache1P1L` (Design 0 levels, with the baseline's
  stride prefetcher when configured);
* ``1P2L`` -> :class:`Cache1P2L` (Design 1 levels, Different-Set or
  Same-Set mapping);
* ``2P2L`` -> :class:`Cache2P2L` (Design 2 LLC, dense or sparse fill).

Levels are chained L1 -> ... -> LLC -> memory port, and the hierarchy
object is the single entry point the CPU model uses.  When the
system's :class:`~repro.common.config.TierConfig` is active, a
:class:`~repro.tier.DieStackedTier` slots in between the LLC and the
memory port — :attr:`CacheHierarchy.port` (the kernel/vector chain
bottom) then *is* the tier, so every replay path sees the same
component in the same program order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.config import CacheLevelConfig, SystemConfig
from ..common.errors import ConfigError
from ..common.stats import StatRegistry
from ..common.types import AccessResult, Request
from ..mem.mda_memory import MdaMemory
from ..tier import DieStackedTier
from .base import CacheLevel, MemoryPort
from .cache_1p1l import Cache1P1L
from .cache_1p2l import Cache1P2L
from .cache_2p2l import Cache2P2L


def build_cache_level(config: CacheLevelConfig, level_index: int,
                      stats: StatRegistry,
                      replacement: str = "lru") -> CacheLevel:
    """Instantiate the class matching a level config's taxonomy point."""
    if config.physical_dims == 2:
        return Cache2P2L(config, level_index, stats, replacement)
    if config.logical_dims == 2:
        return Cache1P2L(config, level_index, stats, replacement)
    return Cache1P1L(config, level_index, stats, replacement)


class CacheHierarchy:
    """A connected chain of cache levels over an MDA memory."""

    def __init__(self, config: SystemConfig, stats: StatRegistry,
                 replacement: str = "lru") -> None:
        self._config = config
        self._stats = stats
        self._replacement = replacement
        self._memory = MdaMemory(config.memory, stats,
                                 allow_column=True)
        self._port = MemoryPort(self._memory, stats)
        self._tier: Optional[DieStackedTier] = None
        if config.tier.active:
            self._tier = DieStackedTier(config.tier, stats,
                                        self._memory, self._port,
                                        len(config.levels) + 1)
        self._levels: List[CacheLevel] = []
        for idx, level_cfg in enumerate(config.levels, start=1):
            self._levels.append(
                build_cache_level(level_cfg, idx, stats, replacement))
        for upper, lower in zip(self._levels, self._levels[1:]):
            upper.connect(lower)
        self._levels[-1].connect(self._tier or self._port)

    @property
    def levels(self) -> List[CacheLevel]:
        return list(self._levels)

    @property
    def l1(self) -> CacheLevel:
        return self._levels[0]

    @property
    def llc(self) -> CacheLevel:
        return self._levels[-1]

    @property
    def memory(self) -> MdaMemory:
        return self._memory

    @property
    def port(self):
        """What sits below the LLC (the kernel chain bottom): the
        die-stacked tier when one is configured, else the raw memory
        port."""
        return self._tier or self._port

    @property
    def tier(self) -> Optional[DieStackedTier]:
        """The die-stacked tier, or ``None`` when disabled."""
        return self._tier

    @property
    def replacement(self) -> str:
        """The replacement policy every level was built with."""
        return self._replacement

    def level(self, name: str) -> CacheLevel:
        """Find a level by its configured name (e.g. "L2")."""
        for lvl in self._levels:
            if lvl.config.name == name:
                return lvl
        raise ConfigError(f"no cache level named {name!r}")

    def access(self, req: Request, now: int) -> AccessResult:
        """Issue one CPU request at absolute cycle ``now``."""
        return self._levels[0].access(req, now)

    def finish(self, now: int) -> int:
        """Drain memory-side state; returns the final horizon."""
        return self._memory.finish(now)

    def flush(self, now: int) -> int:
        """Flush every cache level top-down (then the tier), then
        drain memory."""
        for level in self._levels:
            level.flush(now)
        if self._tier is not None:
            self._tier.flush(now)
        return self._memory.finish(now)

    def occupancy_by_level(self) -> Dict[str, Tuple[int, int]]:
        """(row, column) line occupancy per level (paper Fig. 15)."""
        return {lvl.config.name: lvl.orientation_occupancy()
                for lvl in self._levels}
