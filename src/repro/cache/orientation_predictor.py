"""Dynamic orientation prediction (paper Section IV-C extension).

"While, in this work, we consider only static mappings of orientation
to instructions, the same lookup scheme would be compatible with a
dynamically predicted orientation preference with no additional
overheads on the cache hit path."

This predictor makes that concrete.  Per static reference (ref_id,
standing in for the PC) it watches the geometric relationship between
consecutive scalar accesses:

* staying in the same **column line** while leaving the row line votes
  COLUMN (a down-the-column walk);
* staying in the same **row line** while leaving the column line votes
  ROW;
* leaving both (random/diagonal) decays the counter toward neutral.

A saturating counter turns votes into a prediction once past a
confidence threshold.  The cache uses the prediction only to choose
the *probe order and fill orientation of scalar accesses* — vector
accesses encode their lane layout and cannot be reinterpreted.

The headline use case is annotation-free operation: a legacy binary
whose loads all carry the default row preference still recovers
column-line fills (and the MSHR coalescing they enable) at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..common.stats import StatGroup
from ..common.types import Orientation, line_id_of

#: Shared defaults, also read by the flat-array predictor mirror in
#: :mod:`repro.core.kernels` (``_FlatPredictor``).
DEFAULT_THRESHOLD = 2
DEFAULT_SATURATION = 4
DEFAULT_TABLE_ENTRIES = 64


@dataclass
class _RefState:
    last_row_line: int = -1
    last_col_line: int = -1
    counter: int = 0  # positive -> COLUMN, negative -> ROW


class OrientationPredictor:
    """Per-reference saturating orientation predictor."""

    def __init__(self, stats: StatGroup,
                 threshold: int = DEFAULT_THRESHOLD,
                 saturation: int = DEFAULT_SATURATION,
                 table_entries: int = DEFAULT_TABLE_ENTRIES) -> None:
        if not 1 <= threshold <= saturation:
            raise ValueError("need 1 <= threshold <= saturation")
        self._stats = stats
        self._threshold = threshold
        self._saturation = saturation
        self._capacity = table_entries
        self._table: Dict[int, _RefState] = {}
        # Pre-bound counter cells: the hot path bumps cells directly,
        # and pre-creation keeps the stat key set identical between the
        # object path and the kernel mirror (which shares these cells).
        self._c_table_evictions = stats.counter("table_evictions")
        self._c_static_fallbacks = stats.counter("static_fallbacks")
        self._c_predictions = stats.counter("predictions")
        self._c_overrides = stats.counter("overrides")

    # -- kernel-mirror exposure (read by kernels._FlatPredictor) ----------

    @property
    def threshold(self) -> int:
        return self._threshold

    @property
    def saturation(self) -> int:
        return self._saturation

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def counter_cells(self):
        """(table_evictions, static_fallbacks, predictions, overrides)
        cells, shared with the flat mirror for bit-identical stats."""
        return (self._c_table_evictions, self._c_static_fallbacks,
                self._c_predictions, self._c_overrides)

    def observe_and_predict(self, ref_id: int, addr: int,
                            static_pref: Orientation) -> Orientation:
        """Train on one scalar access and return the orientation to use.

        Falls back to the static preference until confident.
        """
        state = self._table.get(ref_id)
        if state is None:
            if len(self._table) >= self._capacity:
                del self._table[next(iter(self._table))]
                self._c_table_evictions.value += 1
            state = _RefState()
            self._table[ref_id] = state
        row_line = line_id_of(addr, Orientation.ROW)
        col_line = line_id_of(addr, Orientation.COLUMN)
        same_row = row_line == state.last_row_line
        same_col = col_line == state.last_col_line
        if same_col and not same_row:
            state.counter = min(state.counter + 1, self._saturation)
        elif same_row and not same_col:
            state.counter = max(state.counter - 1, -self._saturation)
        # Accesses that leave both lines (tile-boundary crossings of a
        # regular walk, or genuinely irregular refs) are ignored: a
        # column walk leaves both lines once per eight steps, and
        # decaying on that would make the prediction flip-flop.
        state.last_row_line = row_line
        state.last_col_line = col_line

        if state.counter >= self._threshold:
            prediction = Orientation.COLUMN
        elif state.counter <= -self._threshold:
            prediction = Orientation.ROW
        else:
            self._c_static_fallbacks.value += 1
            return static_pref
        self._c_predictions.value += 1
        if prediction is not static_pref:
            self._c_overrides.value += 1
        return prediction

    def confidence(self, ref_id: int) -> int:
        """Signed counter value for a reference (introspection)."""
        state = self._table.get(ref_id)
        return state.counter if state else 0
