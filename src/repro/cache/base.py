"""Shared machinery for all cache designs, plus the memory port.

Inter-level protocol
--------------------

Every level (and the memory port at the bottom) exposes two methods to
the level above it:

``fetch_line(line_id, now, width) -> (completion, serving_level)``
    Deliver an oriented line; ``completion`` is the absolute cycle the
    critical word is available to the requester, ``serving_level`` the
    1-based cache level that had the data (0 = main memory).

``writeback_line(line_id, dirty_mask, now) -> ack``
    Accept an evicted dirty line.  ``dirty_mask`` has bit ``k`` set when
    word ``k`` of the line is dirty (the per-word dirty bits of paper
    Design 1, used to elide clean-word writeback traffic).

The CPU talks to L1 through :meth:`CacheLevel.access`, which adds the
scalar/vector and orientation-preference semantics of paper Section IV-B.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

from ..common.config import CacheLevelConfig
from ..common.stats import Counter, StatGroup, StatRegistry
from ..common.types import (
    AccessResult,
    AccessWidth,
    Request,
    WORDS_PER_LINE,
)
from ..mem.mda_memory import MdaMemory
from .mshr import MshrFile
from .replacement import ReplacementSet, make_replacement_set

FULL_MASK = (1 << WORDS_PER_LINE) - 1


class MemoryPort:
    """Adapts :class:`MdaMemory` to the inter-level protocol."""

    level_index = 0

    def __init__(self, memory: MdaMemory, stats: StatRegistry) -> None:
        self._memory = memory
        self._stats = stats.group("memory.port")
        self._c_fetches = self._stats.counter("fetches")
        self._c_writebacks = self._stats.counter("writebacks")
        self._c_dirty_words = self._stats.counter("dirty_words_written")

    def fetch_line(self, line_id: int, now: int,
                   width: AccessWidth) -> Tuple[int, int]:
        completion = self._memory.read_line(line_id, now)
        self._c_fetches.value += 1
        return completion, 0

    def writeback_line(self, line_id: int, dirty_mask: int,
                       now: int) -> int:
        self._c_writebacks.value += 1
        self._c_dirty_words.value += (dirty_mask & FULL_MASK).bit_count()
        return self._memory.write_line(line_id, now)


class CacheLevel(abc.ABC):
    """Base class: set/frame bookkeeping, MSHRs, stats, latency helpers."""

    def __init__(self, config: CacheLevelConfig, level_index: int,
                 stats: StatRegistry, replacement: str = "lru") -> None:
        self._cfg = config
        self._level = level_index
        # Config-derived values the per-request paths read constantly;
        # materialized once so hits pay plain attribute loads instead of
        # property descriptors recomputing division/max every access.
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        self._hit_latency = config.hit_latency
        self._tag_latency = config.tag_latency
        self._data_latency = config.data_latency
        self._write_latency = config.hit_latency \
            + config.write_extra_latency
        self._stats: StatGroup = stats.group(f"cache.{config.name}")
        self._mshr = MshrFile(config.mshr_entries,
                              stats.group(f"cache.{config.name}.mshr"))
        self._sets: List[ReplacementSet] = [
            make_replacement_set(replacement, seed=i)
            for i in range(config.num_sets)
        ]
        self._lower = None  # type: Optional[object]
        # 2-D ordering only matters when perpendicular lines can
        # coexist; a logically 1-D cache never needs the barrier.
        self._needs_ordering = config.logical_dims == 2
        # Flag for the energy model: physically 2-D arrays are built
        # from the on-chip crosspoint (STT) technology.
        self._stats.set("is_stt_array",
                        1 if config.physical_dims == 2 else 0)
        # line_id -> cycle its fill data actually arrives.  A line is
        # installed at fill-issue time for bookkeeping, but a hit before
        # the data lands must wait for it (this keeps prefetch timing
        # honest and charges coalesced hits their residual latency).
        self._ready_at: Dict[int, int] = {}
        # Pre-bound MSHR methods and counter cells for the
        # per-request paths.
        self._mshr_fetch_slot = self._mshr.fetch_slot
        self._mshr_record = self._mshr.record
        self._c_tag_probes = self._stats.counter("tag_probes")
        self._c_mshr_coalesced = self._stats.counter("mshr_coalesced")
        self._c_fills = self._stats.counter("fills")
        self._c_early_hit_waits = self._stats.counter("early_hit_waits")
        demand_all = self._stats.counter("demand_accesses")
        demand_reads = self._stats.counter("demand_reads")
        demand_writes = self._stats.counter("demand_writes")
        # Indexed by (orientation << 2) | (width << 1) | is_write; each
        # entry is the tuple of cells one demand access bumps.
        self._demand_cells: List[Tuple[Counter, Counter, Counter]] = []
        for orient in ("row", "col"):
            for width in ("scalar", "vector"):
                mix = self._stats.counter(f"demand_{orient}_{width}")
                self._demand_cells.append((demand_all, mix, demand_reads))
                self._demand_cells.append((demand_all, mix, demand_writes))

    # -- wiring --------------------------------------------------------------

    def connect(self, lower) -> None:
        """Attach the next level down (a CacheLevel or MemoryPort)."""
        self._lower = lower

    @property
    def config(self) -> CacheLevelConfig:
        return self._cfg

    @property
    def level_index(self) -> int:
        return self._level

    @property
    def stats(self) -> StatGroup:
        return self._stats

    @property
    def mshr(self) -> MshrFile:
        return self._mshr

    # -- protocol ------------------------------------------------------------

    @abc.abstractmethod
    def access(self, req: Request, now: int) -> AccessResult:
        """CPU-facing access (only called on the first level)."""

    @abc.abstractmethod
    def fetch_line(self, line_id: int, now: int,
                   width: AccessWidth) -> Tuple[int, int]:
        """Deliver an oriented line to the level above."""

    @abc.abstractmethod
    def writeback_line(self, line_id: int, dirty_mask: int,
                       now: int) -> int:
        """Accept a dirty line evicted from the level above."""

    @abc.abstractmethod
    def orientation_occupancy(self) -> Tuple[int, int]:
        """(row_lines, column_lines) currently resident (paper Fig. 15)."""

    @abc.abstractmethod
    def flush(self, now: int) -> None:
        """Write back all dirty state to the level below and invalidate.

        Used by tests (dirty-word conservation) and by callers that want
        memory to reflect the final cache contents.
        """

    # -- shared helpers -------------------------------------------------------

    def _set_for(self, number: int) -> ReplacementSet:
        return self._sets[number % self._num_sets]

    def _fetch_below(self, line_id: int, now: int,
                     width: AccessWidth) -> Tuple[int, int]:
        """Fetch through the MSHR file: coalesce, order, or miss below.

        Returns (completion, serving_level).  A coalesced request is
        counted and inherits the outstanding fill's completion.
        """
        in_flight, aux = self._mshr_fetch_slot(
            line_id, now, self._needs_ordering)
        if in_flight is not None:
            # aux is the serving level of the outstanding fill.
            self._c_mshr_coalesced.value += 1
            return (in_flight if in_flight > now else now), aux
        # aux is the issue time of the newly reserved entry.
        completion, level = self._lower.fetch_line(line_id, aux, width)
        self._mshr_record(line_id, completion, level)
        self._c_fills.value += 1
        return completion, level

    def _probe(self, count: int = 1) -> None:
        """Account tag-array probes (latency is charged separately)."""
        self._c_tag_probes.value += count

    def _note_ready(self, line_id: int, completion: int,
                    now: int) -> None:
        """Record when a just-filled line's data actually lands."""
        if completion > now:
            self._ready_at[line_id] = completion

    def _data_ready(self, line_id: int, now: int) -> int:
        """Earliest cycle a hit on ``line_id`` can return data."""
        ready = self._ready_at.get(line_id)
        if ready is None:
            return now
        if ready <= now:
            del self._ready_at[line_id]
            return now
        self._c_early_hit_waits.value += 1
        return ready

    def _count_demand(self, req: Request) -> None:
        """Bump the demand-access counters used by Figs. 10/11."""
        index = (req.orientation << 2) | (req.width << 1) | req.is_write
        for cell in self._demand_cells[index]:
            cell.value += 1
