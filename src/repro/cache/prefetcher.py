"""Reference-indexed stride prefetcher.

The paper evaluates the 1P1L baseline *with* prefetching enabled ("the
baseline 1P1L cache hierarchy is evaluated with prefetching enabled") and
the MDA designs without, to show that column access is "fundamentally
distinct from prefetching".  This is a classic PC-indexed (here:
reference-id-indexed) stride prefetcher: per static reference it tracks
the last address and last stride; after ``train_threshold`` consecutive
identical strides it prefetches ``degree`` lines ahead.

Note the paper's observation (Section IX-A) that a column walk over a
1-D layout is a page-sized-stride pattern — exactly what this prefetcher
learns — but each prefetch still moves a whole row-oriented line, so the
bandwidth cost stays 8x that of a true column fetch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..common.config import PrefetcherConfig
from ..common.stats import StatGroup
from ..common.types import LINE_BYTES, Orientation, line_id_of


@dataclass
class _StrideEntry:
    last_addr: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Per-reference stride detection and prefetch address generation."""

    def __init__(self, config: PrefetcherConfig, stats: StatGroup) -> None:
        self._config = config
        self._stats = stats
        self._table: Dict[int, _StrideEntry] = {}

    def observe(self, ref_id: int, addr: int) -> List[int]:
        """Train on a demand access; returns row line ids to prefetch."""
        if not self._config.enabled:
            return []
        entry = self._table.get(ref_id)
        if entry is None:
            self._evict_if_full()
            self._table[ref_id] = _StrideEntry(last_addr=addr)
            return []
        stride = addr - entry.last_addr
        entry.last_addr = addr
        if stride == 0:
            return []
        if stride == entry.stride:
            entry.confidence = min(entry.confidence + 1,
                                   self._config.train_threshold)
        else:
            entry.stride = stride
            entry.confidence = 1
            return []
        if entry.confidence < self._config.train_threshold:
            return []
        lines: List[int] = []
        seen = set()
        for k in range(1, self._config.degree + 1):
            target = addr + k * stride
            if target < 0:
                break
            line = line_id_of(target, Orientation.ROW)
            if line not in seen:
                seen.add(line)
                lines.append(line)
        self._stats.add("prefetches_generated", len(lines))
        return lines

    def plan_quiescent(self, ref_id: int, addrs: List[int]):
        """Longest non-firing training prefix of ``addrs``.

        Returns ``(count, state)``: fed the first ``count`` addresses
        through :meth:`observe`, the automaton would generate no
        prefetch (and touch no stats), and ``state`` is the entry
        state after exactly those observes, committable later via
        :meth:`apply_state`.  Nothing is mutated here, so bulk replay
        can qualify a window, shrink it, and re-plan.  An access at
        index ``count`` (if any) would fire — the caller must replay
        it and everything after through the scalar path.  A disabled
        prefetcher ignores every access, so the whole list is
        quiescent with no state.
        """
        if not self._config.enabled:
            return len(addrs), None
        if not addrs:
            return 0, None
        threshold = self._config.train_threshold
        entry = self._table.get(ref_id)
        if entry is None:
            created = True
            last, stride, conf = addrs[0], 0, 0
            i = 1
        else:
            created = False
            last = entry.last_addr
            stride = entry.stride
            conf = entry.confidence
            i = 0
        n = len(addrs)
        while i < n:
            addr = addrs[i]
            step = addr - last
            if step == 0:
                pass
            elif step == stride:
                # min(conf + 1, threshold) >= threshold exactly when
                # conf + 1 >= threshold: this observe would fire (and
                # bump prefetches_generated even for an empty burst).
                if conf + 1 >= threshold:
                    break
                conf += 1
            else:
                stride = step
                conf = 1
            last = addr
            i += 1
        if i == 0:
            return 0, None
        return i, (created, last, stride, conf)

    def apply_state(self, ref_id: int, state) -> None:
        """Commit a :meth:`plan_quiescent` state — bit-identical to the
        per-access observes it summarizes (a quiescent observe mutates
        nothing but its own entry)."""
        if state is None:
            return
        created, last, stride, conf = state
        if created:
            self._evict_if_full()
            self._table[ref_id] = _StrideEntry(last, stride, conf)
        else:
            entry = self._table[ref_id]
            entry.last_addr = last
            entry.stride = stride
            entry.confidence = conf

    def _evict_if_full(self) -> None:
        if len(self._table) >= self._config.table_entries:
            oldest = next(iter(self._table))
            del self._table[oldest]
            self._stats.add("table_evictions")

    def covered_bytes(self) -> Optional[int]:
        """Bytes a full-degree prefetch burst moves (for reporting)."""
        if not self._config.enabled:
            return None
        return self._config.degree * LINE_BYTES
