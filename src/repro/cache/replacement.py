"""Replacement policies.

Each cache set owns one policy instance tracking the keys currently
resident in that set.  LRU is the paper's (and gem5's) default; FIFO and
Random are provided for the ablation benchmarks.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, Hashable, List, Optional


class ReplacementSet(abc.ABC):
    """Replacement bookkeeping for the keys of a single set."""

    @abc.abstractmethod
    def insert(self, key: Hashable) -> None:
        """Record a newly-filled key."""

    @abc.abstractmethod
    def touch(self, key: Hashable) -> None:
        """Record a hit on ``key``."""

    @abc.abstractmethod
    def remove(self, key: Hashable) -> None:
        """Forget ``key`` (invalidation or eviction already chosen)."""

    @abc.abstractmethod
    def victim(self) -> Hashable:
        """Choose the key to evict; the caller then calls remove()."""

    @abc.abstractmethod
    def __len__(self) -> int:
        ...

    @abc.abstractmethod
    def keys(self) -> List[Hashable]:
        ...


class LruSet(ReplacementSet):
    """Least-recently-used, exploiting dict insertion order."""

    def __init__(self) -> None:
        self._order: Dict[Hashable, None] = {}

    def insert(self, key: Hashable) -> None:
        self._order[key] = None

    def touch(self, key: Hashable) -> None:
        del self._order[key]
        self._order[key] = None

    def remove(self, key: Hashable) -> None:
        del self._order[key]

    def victim(self) -> Hashable:
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)

    def keys(self) -> List[Hashable]:
        return list(self._order)


class FifoSet(ReplacementSet):
    """First-in-first-out: hits do not refresh position."""

    def __init__(self) -> None:
        self._order: Dict[Hashable, None] = {}

    def insert(self, key: Hashable) -> None:
        self._order[key] = None

    def touch(self, key: Hashable) -> None:
        pass

    def remove(self, key: Hashable) -> None:
        del self._order[key]

    def victim(self) -> Hashable:
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)

    def keys(self) -> List[Hashable]:
        return list(self._order)


class RandomSet(ReplacementSet):
    """Uniform-random victim selection (seeded for reproducibility)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._members: Dict[Hashable, None] = {}

    def insert(self, key: Hashable) -> None:
        self._members[key] = None

    def touch(self, key: Hashable) -> None:
        pass

    def remove(self, key: Hashable) -> None:
        del self._members[key]

    def victim(self) -> Hashable:
        keys = list(self._members)
        return keys[self._rng.randrange(len(keys))]

    def __len__(self) -> int:
        return len(self._members)

    def keys(self) -> List[Hashable]:
        return list(self._members)


_POLICIES = {
    "lru": LruSet,
    "fifo": FifoSet,
    "random": RandomSet,
}


def make_replacement_set(policy: str = "lru",
                         seed: Optional[int] = None) -> ReplacementSet:
    """Factory for one set's replacement state.

    Args:
        policy: "lru", "fifo", or "random".
        seed: only meaningful for "random".
    """
    try:
        cls = _POLICIES[policy]
    except KeyError:
        raise ValueError(f"unknown replacement policy {policy!r}") from None
    if cls is RandomSet:
        return RandomSet(seed or 0)
    return cls()
