"""MDACache cache hierarchy: the paper's primary contribution."""

from .base import CacheLevel, FULL_MASK, MemoryPort
from .cache_1p1l import Cache1P1L
from .cache_1p2l import Cache1P2L
from .cache_2p2l import BlockState, Cache2P2L
from .duplication import (
    check_duplication_invariant,
    copies_of_word,
    duplicate_pairs,
)
from .hierarchy import CacheHierarchy, build_cache_level
from .mshr import MshrFile
from .prefetcher import StridePrefetcher
from .replacement import (
    FifoSet,
    LruSet,
    RandomSet,
    ReplacementSet,
    make_replacement_set,
)

__all__ = [
    "BlockState",
    "Cache1P1L",
    "Cache1P2L",
    "Cache2P2L",
    "CacheHierarchy",
    "CacheLevel",
    "FULL_MASK",
    "FifoSet",
    "LruSet",
    "MemoryPort",
    "MshrFile",
    "RandomSet",
    "ReplacementSet",
    "StridePrefetcher",
    "build_cache_level",
    "check_duplication_invariant",
    "copies_of_word",
    "duplicate_pairs",
    "make_replacement_set",
]
