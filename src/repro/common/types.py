"""Core value types shared across the MDACache simulator.

The MDA address space is organized around three geometric units:

* a **word** (8 bytes) — the unit of scalar access and of bit-slicing in
  the crosspoint mats (paper Section III);
* a **line** (8 words, 64 bytes) — the unit of transfer between cache
  levels and between the LLC and memory, in either orientation;
* a **tile** (8 lines x 8 lines, 512 bytes) — an aligned 8x8-word square.
  Tiles are the unit of channel/rank/bank interleaving (paper Fig. 8) and
  the unit of allocation in a physically 2-D (2P2L) cache (paper Fig. 7).

Within a tile, the word at tile-local row ``r`` and column ``c`` lives at
byte offset ``(r * 8 + c) * 8``.  A *row line* is therefore 64 contiguous
bytes; a *column line* is 8 words with a 64-byte stride inside the same
512-byte tile.  Both orientations of line stay inside one tile, hence one
bank, which is what lets the MDA memory stream either in a single buffer
operation.
"""

from __future__ import annotations

import enum
from array import array
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Iterator, Optional, Tuple, Union

# -- Fixed geometry ---------------------------------------------------------
#
# The paper evaluates a single geometry (64-bit words, 64-byte lines,
# 8-line tiles).  We keep these as module constants rather than threading a
# geometry object through every hot path; the derived helpers below are the
# only place the arithmetic lives.

WORD_BYTES = 8
WORDS_PER_LINE = 8
LINE_BYTES = WORD_BYTES * WORDS_PER_LINE          # 64
LINES_PER_TILE = 8
TILE_BYTES = LINE_BYTES * LINES_PER_TILE          # 512
WORDS_PER_TILE = WORDS_PER_LINE * LINES_PER_TILE  # 64

_WORD_SHIFT = 3      # log2(WORD_BYTES)
_LINE_SHIFT = 6      # log2(LINE_BYTES)
_TILE_SHIFT = 9      # log2(TILE_BYTES)


class Orientation(enum.IntEnum):
    """Access/line orientation.

    ``ROW`` means unit stride among consecutive words; ``COLUMN`` means a
    fixed 64-byte stride inside a tile (paper Section III: "in row mode the
    memory provides a set of data words with unit stride, and in column
    mode the memory provides the same quantity of data words with a fixed
    non-unit stride").
    """

    ROW = 0
    COLUMN = 1

    @property
    def other(self) -> "Orientation":
        """The perpendicular orientation."""
        return Orientation.COLUMN if self is Orientation.ROW else Orientation.ROW


class AccessWidth(enum.IntEnum):
    """Scalar (one word) versus vector (a full 8-word line) access."""

    SCALAR = 0
    VECTOR = 1


@dataclass(frozen=True, slots=True)
class Request:
    """A single memory request as seen by the cache hierarchy.

    Attributes:
        addr: byte address of the first word touched.
        orientation: row or column preference carried by the instruction
            (paper Section IV-B: every memory operation has a row and a
            column preference variant).
        width: scalar or vector access.
        is_write: True for stores.
        ref_id: stable identifier of the static reference (stands in for
            the program counter; used by the stride prefetcher).
    """

    addr: int
    orientation: Orientation
    width: AccessWidth
    is_write: bool
    ref_id: int = 0

    @property
    def line_id(self) -> int:
        """Oriented line this request falls in."""
        return line_id_of(self.addr, self.orientation)

    @property
    def word_id(self) -> int:
        """Global word index of the first word touched."""
        return self.addr >> _WORD_SHIFT

    def words(self) -> Tuple[int, ...]:
        """Global word indices touched by this request."""
        if self.width is AccessWidth.SCALAR:
            return (self.word_id,)
        return line_words(self.line_id)


# -- Address arithmetic -----------------------------------------------------

def tile_base(addr: int) -> int:
    """Byte address of the 512-byte tile containing ``addr``."""
    return addr & ~(TILE_BYTES - 1)


def tile_id(addr: int) -> int:
    """Dense index of the tile containing ``addr``."""
    return addr >> _TILE_SHIFT


def tile_coords(addr: int) -> Tuple[int, int]:
    """Tile-local ``(r, c)`` word coordinates of ``addr``."""
    word = (addr & (TILE_BYTES - 1)) >> _WORD_SHIFT
    return word >> 3, word & 7


def word_addr(tile: int, r: int, c: int) -> int:
    """Byte address of word ``(r, c)`` in tile index ``tile``."""
    return (tile << _TILE_SHIFT) | ((r * WORDS_PER_LINE + c) << _WORD_SHIFT)


# Oriented line ids.  A line id is a single int that encodes
# (tile, orientation, index-within-tile); caches key their tag stores on it.
# Layout (LSB first): 3 bits index, 1 bit orientation, then the tile id.

_LINE_ORIENT_BIT = 1 << 3
_LINE_TILE_SHIFT = 4

# Hot paths decode millions of line ids; indexing this tuple avoids the
# cost of Orientation.__call__.
_ORIENT_MEMBERS = (Orientation.ROW, Orientation.COLUMN)


def line_id_of(addr: int, orientation: Orientation) -> int:
    """Oriented line id containing byte address ``addr``."""
    word = (addr & (TILE_BYTES - 1)) >> _WORD_SHIFT
    index = word >> 3 if orientation is Orientation.ROW else word & 7
    return ((addr >> _TILE_SHIFT) << _LINE_TILE_SHIFT) \
        | (int(orientation) << 3) | index


def make_line_id(tile: int, orientation: Orientation, index: int) -> int:
    """Build a line id from its components."""
    return (tile << _LINE_TILE_SHIFT) | (int(orientation) << 3) | index


def line_id_parts(line_id: int) -> Tuple[int, Orientation, int]:
    """Decompose a line id into ``(tile, orientation, index)``."""
    return (line_id >> _LINE_TILE_SHIFT,
            _ORIENT_MEMBERS[(line_id >> 3) & 1],
            line_id & 7)


def line_orientation(line_id: int) -> Orientation:
    """Orientation encoded in a line id."""
    return _ORIENT_MEMBERS[(line_id >> 3) & 1]


def line_base_addr(line_id: int) -> int:
    """Byte address of the first word of an oriented line."""
    tile, orientation, index = line_id_parts(line_id)
    if orientation is Orientation.ROW:
        return word_addr(tile, index, 0)
    return word_addr(tile, 0, index)


@lru_cache(maxsize=65536)
def line_words(line_id: int) -> Tuple[int, ...]:
    """Global word indices covered by an oriented line."""
    tile, orientation, index = line_id_parts(line_id)
    base_word = tile * WORDS_PER_TILE
    if orientation is Orientation.ROW:
        start = base_word + index * WORDS_PER_LINE
        return tuple(range(start, start + WORDS_PER_LINE))
    return tuple(base_word + index + k * WORDS_PER_LINE
                 for k in range(LINES_PER_TILE))


def line_word_offset(line_id: int, word_id: int) -> int:
    """Position (0-7) of global word ``word_id`` within the oriented line.

    Raises:
        ValueError: if the word does not belong to the line.
    """
    tile, orientation, index = line_id_parts(line_id)
    if word_id // WORDS_PER_TILE != tile:
        raise ValueError(f"word {word_id} not in tile of line {line_id}")
    local = word_id % WORDS_PER_TILE
    r, c = local >> 3, local & 7
    if orientation is Orientation.ROW:
        if r != index:
            raise ValueError(f"word {word_id} not in row line {line_id}")
        return c
    if c != index:
        raise ValueError(f"word {word_id} not in column line {line_id}")
    return r


def intersecting_line(line_id: int, word_id: int) -> int:
    """Line id of the perpendicular line through ``word_id``'s tile cell.

    Every word belongs to exactly one row line and one column line of its
    tile; given one of them, this returns the other.  This is the
    "intersecting cache line" relation behind the 1P2L duplication policy
    (paper Fig. 9).
    """
    tile, orientation, _ = line_id_parts(line_id)
    local = word_id % WORDS_PER_TILE
    r, c = local >> 3, local & 7
    if orientation is Orientation.ROW:
        return make_line_id(tile, Orientation.COLUMN, c)
    return make_line_id(tile, Orientation.ROW, r)


@lru_cache(maxsize=65536)
def perpendicular_lines(line_id: int) -> Tuple[int, ...]:
    """The eight perpendicular lines crossing an oriented line."""
    tile, orientation, _ = line_id_parts(line_id)
    return tuple(make_line_id(tile, orientation.other, k)
                 for k in range(LINES_PER_TILE))


def lines_overlap(a: int, b: int) -> bool:
    """True if oriented lines ``a`` and ``b`` share at least one word.

    Same-orientation lines overlap only when identical; perpendicular
    lines overlap exactly when they live in the same tile.
    """
    if a == b:
        return True
    tile_a, orient_a, _ = line_id_parts(a)
    tile_b, orient_b, _ = line_id_parts(b)
    return tile_a == tile_b and orient_a is not orient_b


def iter_line_addrs(line_id: int) -> Iterator[int]:
    """Byte addresses of each word of an oriented line, in order."""
    for word in line_words(line_id):
        yield word << _WORD_SHIFT


# -- Packed trace encoding ---------------------------------------------------
#
# A trace is millions of requests, each of which fits comfortably in one
# 64-bit word; storing them as ``array('Q')`` instead of a tuple of
# frozen dataclasses cuts the memory footprint ~30x and lets the replay
# loop (:meth:`repro.core.cpu.TraceDrivenCpu.run_packed`) decode fields
# with two shifts and a mask instead of attribute lookups.
#
# Word layout (LSB first):
#
#   bits  0-15  ref_id        (static reference id, < 65536)
#   bit     16  is_write
#   bit     17  width         (0 scalar, 1 vector)
#   bit     18  orientation   (0 row, 1 column)
#   bits 19-63  word address  (addr >> 3; addresses are word-aligned)
#
# Keeping the address in the high bits makes the common decode —
# ``word_id = w >> 19`` — a single shift.

PACKED_REF_BITS = 16
PACKED_REF_LIMIT = 1 << PACKED_REF_BITS
_PACKED_ADDR_SHIFT = 3 + PACKED_REF_BITS  # 19
#: Largest encodable byte address (45 address bits above the word shift).
PACKED_ADDR_LIMIT = 1 << (64 - _PACKED_ADDR_SHIFT + _WORD_SHIFT)

_WIDTH_MEMBERS = (AccessWidth.SCALAR, AccessWidth.VECTOR)


def pack_request(req: Request) -> int:
    """Encode a request into its 64-bit packed-trace word.

    Raises:
        ValueError: address not word-aligned / out of range, or ref_id
            outside the 16-bit field.
    """
    addr = req.addr
    if addr & 7 or not 0 <= addr < PACKED_ADDR_LIMIT:
        raise ValueError(
            f"address {addr:#x} not packable (word-aligned, "
            f"< {PACKED_ADDR_LIMIT:#x})")
    ref_id = req.ref_id
    if not 0 <= ref_id < PACKED_REF_LIMIT:
        raise ValueError(
            f"ref_id {ref_id} does not fit in {PACKED_REF_BITS} bits")
    return ((addr >> _WORD_SHIFT) << _PACKED_ADDR_SHIFT) \
        | (req.orientation << 18) | (req.width << 17) \
        | (bool(req.is_write) << 16) | ref_id


def unpack_request(word: int) -> Request:
    """Decode one packed-trace word back into a :class:`Request`."""
    return Request(
        addr=(word >> _PACKED_ADDR_SHIFT) << _WORD_SHIFT,
        orientation=_ORIENT_MEMBERS[(word >> 18) & 1],
        width=_WIDTH_MEMBERS[(word >> 17) & 1],
        is_write=bool(word & (1 << 16)),
        ref_id=word & (PACKED_REF_LIMIT - 1))


class PackedTrace:
    """A request trace stored one 64-bit word per request.

    The payload lives in a single flat buffer of 64-bit words
    (``words``): either an owning ``array('Q')`` or a read-only
    ``memoryview`` cast to format ``'Q'`` over someone else's storage —
    in particular an ``mmap`` of a trace-store entry, which makes a
    loaded trace a zero-copy window onto the page cache that forked
    workers share without duplication.  Every consumer reaches the
    payload through the buffer protocol (``numpy.frombuffer``) or
    plain indexing/iteration, which both forms support identically.
    Iterating decodes to :class:`Request` objects for compatibility
    with the object path; the fast path hands ``words`` straight to
    the replay loop.  Pickling always materializes (a view is not
    picklable), so a mapped trace round-trips as an owning one.
    """

    __slots__ = ("words",)

    def __init__(self,
                 words: Union[array, memoryview, None] = None) -> None:
        if words is None:
            words = array("Q")
        elif isinstance(words, memoryview):
            if words.format != "Q":
                raise ValueError(
                    "PackedTrace needs a memoryview cast to 'Q', "
                    f"got format {words.format!r}")
        elif words.typecode != "Q":
            raise ValueError(
                f"PackedTrace needs array('Q'), got {words.typecode!r}")
        self.words = words

    @classmethod
    def from_requests(cls, requests: Iterable[Request]) -> "PackedTrace":
        return cls(array("Q", map(pack_request, requests)))

    @classmethod
    def from_bytes(cls, payload: bytes) -> "PackedTrace":
        """Rebuild from :meth:`to_bytes` output (little-endian words)."""
        words = array("Q")
        words.frombytes(payload)
        if _BIG_ENDIAN:  # pragma: no cover - big-endian hosts
            words.byteswap()
        return cls(words)

    def to_bytes(self) -> bytes:
        """The payload as little-endian bytes (platform-independent)."""
        if _BIG_ENDIAN:  # pragma: no cover - big-endian hosts
            swapped = array("Q", self.words)
            swapped.byteswap()
            return swapped.tobytes()
        return self.words.tobytes()

    def __reduce__(self):
        # A memoryview payload (mmap-backed zero-copy load) is not
        # picklable; both forms round-trip through the portable bytes
        # encoding and unpickle as an owning trace.
        return (PackedTrace.from_bytes, (self.to_bytes(),))

    def __len__(self) -> int:
        return len(self.words)

    def __iter__(self) -> Iterator[Request]:
        return map(unpack_request, self.words)

    def __getitem__(self, index: int) -> Request:
        return unpack_request(self.words[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedTrace):
            return NotImplemented
        return self.words == other.words

    def __repr__(self) -> str:
        return f"PackedTrace({len(self.words)} requests)"


_BIG_ENDIAN = array("Q", [1]).tobytes()[0] == 0


# -- Trace sharding ----------------------------------------------------------
#
# A long packed trace can replay as N *epochs*: contiguous segments,
# each starting from a cold hierarchy (the context-switch model), whose
# per-epoch stats merge by plain summation.  The segment boundaries are
# part of the experiment's identity — ``shards=1`` is the classic
# uninterrupted replay — so they must be a pure function of
# ``(total, shards)``.  Boundaries snap to the vector replay's chunk
# quantum so a shard edge is always a dependency-window edge.

#: Classification-chunk quantum of the vectorized replay
#: (:mod:`repro.core.vector`); shard boundaries align to it.
WINDOW_ALIGN = 4096


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """Deterministic split of ``total`` requests into replay epochs.

    ``bounds`` has one more entry than there are shards; shard ``i``
    replays requests ``[bounds[i], bounds[i+1])``.  Invariants (checked
    on construction): bounds start at 0, end at ``total``, are strictly
    increasing (no empty shard, except the single empty shard of an
    empty trace), and every interior bound is a ``WINDOW_ALIGN``
    multiple.
    """

    total: int
    bounds: Tuple[int, ...]

    def __post_init__(self) -> None:
        bounds = self.bounds
        if self.total < 0:
            raise ValueError(f"negative trace length {self.total}")
        if len(bounds) < 2 or bounds[0] != 0 or bounds[-1] != self.total:
            raise ValueError(
                f"bounds {bounds} must run from 0 to {self.total}")
        for prev, nxt in zip(bounds, bounds[1:]):
            if prev >= nxt and self.total:
                raise ValueError(f"bounds {bounds} not increasing")
        for bound in bounds[1:-1]:
            if bound % WINDOW_ALIGN:
                raise ValueError(
                    f"interior bound {bound} not aligned to "
                    f"{WINDOW_ALIGN}")

    @classmethod
    def plan(cls, total: int, shards: int) -> "ShardPlan":
        """Split ``total`` requests into at most ``shards`` epochs.

        Ideal equal splits are snapped down to the alignment quantum;
        short traces yield fewer epochs than requested (never an empty
        one).  ``plan(n, 1)`` is always the single full-trace epoch.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        bounds = [0]
        for i in range(1, shards):
            cut = (i * total // shards) // WINDOW_ALIGN * WINDOW_ALIGN
            if cut > bounds[-1] and cut < total:
                bounds.append(cut)
        bounds.append(total)
        return cls(total, tuple(bounds))

    @property
    def shards(self) -> int:
        return len(self.bounds) - 1

    def slices(self) -> Iterator[Tuple[int, int]]:
        """The ``(start, stop)`` request range of each epoch, in order."""
        return iter(zip(self.bounds, self.bounds[1:]))

    def to_bytes(self) -> bytes:
        """Serialize (little-endian u64 words: total, then bounds)."""
        words = array("Q", [self.total, *self.bounds])
        if _BIG_ENDIAN:  # pragma: no cover - big-endian hosts
            words.byteswap()
        return words.tobytes()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "ShardPlan":
        """Inverse of :meth:`to_bytes` (same invariant checks)."""
        words = array("Q")
        words.frombytes(payload)
        if _BIG_ENDIAN:  # pragma: no cover - big-endian hosts
            words.byteswap()
        if len(words) < 3:
            raise ValueError("shard plan payload too short")
        return cls(words[0], tuple(words[1:]))


@dataclass(slots=True)
class AccessResult:
    """Outcome of one request against the cache hierarchy.

    Attributes:
        latency: cycles from issue until the critical word is available.
        hit_level: 1-based cache level that served the request, or 0 when
            it was served by main memory.
    """

    latency: int
    hit_level: int = 0
    coalesced: bool = field(default=False)
