"""Exception hierarchy for the MDACache reproduction.

The experiment-engine additions (:class:`ExperimentError` and below)
form the retry taxonomy the supervisor uses to decide whether a failed
simulation point is worth re-dispatching: :class:`TransientRunError`
subclasses describe environmental failures (a crashed or hung worker,
a wall-clock timeout, a broken pool, a lock that never came free) that
a retry can plausibly fix, while :class:`PermanentRunError` covers
deterministic failures that would simply fail again.
:func:`classify_error` maps arbitrary exceptions onto the two classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class AddressError(ReproError):
    """An address fell outside the mapped physical space."""


class ProgramError(ReproError):
    """A kernel description (loop nest / array reference) is malformed."""


class SimulationError(ReproError):
    """An internal invariant of the simulator was violated."""


# -- experiment-engine supervision --------------------------------------------


class ExperimentError(ReproError):
    """Base class for experiment-engine (scheduler/supervisor) failures."""


class TransientRunError(ExperimentError):
    """A run failed for environmental reasons; a retry may succeed."""


class WorkerCrash(TransientRunError):
    """A pool worker died (killed, OOM, segfault) while running a point."""


class WorkerHang(TransientRunError):
    """A pool worker stopped heartbeating while running a point."""


class RunTimeout(TransientRunError):
    """A run exceeded its per-point wall-clock budget."""


class PoolBroken(TransientRunError):
    """The worker pool could not be created or had to be torn down."""


class LockTimeout(TransientRunError):
    """An advisory file lock could not be acquired within its budget."""


class PermanentRunError(ExperimentError):
    """A run failed deterministically; retrying would fail identically."""


# -- simulation service -------------------------------------------------------


class ServiceError(ReproError):
    """Base class for simulation-service (server/client) failures."""


class ValidationFailed(ServiceError):
    """A service request did not validate against the config schema.

    Maps to HTTP 400: the request is malformed or names an unknown
    design/workload/override, and retrying it unchanged cannot help.
    """


class AdmissionRejected(ServiceError):
    """The admission queue is full; the caller should back off.

    Maps to HTTP 429 with a ``Retry-After`` hint — explicit
    backpressure instead of unbounded queueing.
    """

    def __init__(self, message: str = "admission queue full",
                 retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class SimulationFailed(ServiceError):
    """A served simulation point failed permanently (HTTP 500).

    The supervisor already spent the retry budget; the message carries
    the final error string from the sweep report.
    """


class ServiceDraining(ServiceError):
    """The server is draining (SIGTERM) and accepts no new work.

    Maps to HTTP 503 with a ``Retry-After`` hint; in-flight requests
    still complete.
    """

    def __init__(self, message: str = "server draining",
                 retry_after: float = 5.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class CircuitOpen(ServiceError):
    """The client-side circuit breaker is open.

    Raised (client side only — it never crosses the wire) when a
    request would be attempted while the breaker's cooldown is still
    running and the caller asked not to wait it out.  ``retry_after``
    is the remaining cooldown.
    """

    def __init__(self, message: str = "circuit breaker open",
                 retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class WorkerRestartStorm(TransientRunError):
    """A serving worker slot crash-looped past its restart budget.

    Raised/recorded by the pre-fork master when one worker slot keeps
    dying faster than its backoff window allows; the master responds by
    degrading to fewer workers rather than hot-looping forks.
    """


class SweepInterrupted(ExperimentError):
    """A sweep was stopped by SIGINT/SIGTERM; journal was flushed.

    Carried to the CLI layer, which exits with status 130 (the shell
    convention for death-by-SIGINT).
    """

    def __init__(self, message: str = "sweep interrupted",
                 report: object = None) -> None:
        super().__init__(message)
        self.report = report


class SweepFailed(ExperimentError):
    """One or more points exhausted their retry budget or failed hard."""

    def __init__(self, message: str, report: object = None) -> None:
        super().__init__(message)
        self.report = report


#: CLI exit status for an interrupted sweep (128 + SIGINT).
EXIT_INTERRUPTED = 130

#: CLI exit status when a sweep completed but points failed permanently.
EXIT_SWEEP_FAILED = 3

#: Exception types (beyond TransientRunError) that a retry may fix:
#: resource pressure, I/O flakes, and multiprocessing plumbing faults.
_TRANSIENT_TYPES = (OSError, MemoryError, EOFError,
                    BrokenPipeError, ConnectionError, InterruptedError)


def classify_error(exc: BaseException) -> str:
    """``"transient"`` or ``"permanent"`` for a failed run's exception.

    The default is permanent: the simulator is deterministic, so an
    unrecognized failure will recur on retry; only environmental error
    families earn another attempt.
    """
    if isinstance(exc, TransientRunError):
        return "transient"
    if isinstance(exc, PermanentRunError):
        return "permanent"
    if isinstance(exc, _TRANSIENT_TYPES):
        return "transient"
    return "permanent"


def is_transient(exc: BaseException) -> bool:
    """True when :func:`classify_error` deems the exception retryable."""
    return classify_error(exc) == "transient"
