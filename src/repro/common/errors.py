"""Exception hierarchy for the MDACache reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class AddressError(ReproError):
    """An address fell outside the mapped physical space."""


class ProgramError(ReproError):
    """A kernel description (loop nest / array reference) is malformed."""


class SimulationError(ReproError):
    """An internal invariant of the simulator was violated."""
