"""Statistics collection.

Every component owns a :class:`StatGroup`; groups nest into a
:class:`StatRegistry` that the simulator exposes on its results object.
Counters are :class:`Counter` cells; hot paths pre-bind a cell once via
:meth:`StatGroup.counter` and bump it without any per-event dict lookup
or key hashing.  Time series support the occupancy-over-time plots
(paper Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

#: Shared latency-histogram bucket scheme: one counter per power-of-two
#: bucket, ``bucket = int(value).bit_length()`` (value 0 lands in bucket
#: 0, 1 in bucket 1, 2-3 in bucket 2, ...).  The replay paths
#: (``run`` / ``run_packed`` / ``run_kernel``) record per-request cycle
#: latencies under these keys, and the service layer reuses the same
#: scheme for its per-stage wall-clock histograms so every histogram in
#: the system is bucket-compatible.
LAT_HIST_KEYS = tuple(f"lat_hist_b{b:02d}" for b in range(160))


def lat_bucket(value: int) -> int:
    """Bucket index of ``value`` under the shared log2 scheme."""
    bucket = int(value).bit_length()
    last = len(LAT_HIST_KEYS) - 1
    return bucket if bucket < last else last


try:  # optional accelerator (same policy as repro.core.kernels)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the test env
    _np = None

# float64 mantissas hold 52 bits: below this bound the frexp exponent
# of a positive integer equals its bit length exactly, so the numpy
# bucketing below is bit-identical to :func:`lat_bucket`.
_FREXP_EXACT = 1 << 52


def lat_hist_counts(latencies) -> List[Tuple[int, int]]:
    """Bucket counts of ``latencies`` under the shared log2 scheme.

    Returns sorted ``(bucket, count)`` pairs for the buckets that
    occur — the vectorized counterpart of per-value :func:`lat_bucket`,
    used by the bulk replay paths to fold a whole window's latencies
    into a histogram at once.  Values at or above 2**52 (or a missing
    numpy) take the scalar loop.
    """
    if _np is not None and len(latencies) >= 16:
        arr = _np.asarray(latencies, dtype=_np.int64)
        if int(arr.min()) >= 0 and int(arr.max()) < _FREXP_EXACT:
            buckets = _np.frexp(arr.astype(_np.float64))[1]
            last = len(LAT_HIST_KEYS) - 1
            counts = _np.bincount(_np.minimum(buckets, last))
            return [(int(b), int(counts[b]))
                    for b in _np.flatnonzero(counts)]
    scalar: Dict[int, int] = {}
    for value in latencies:
        bucket = lat_bucket(value)
        scalar[bucket] = scalar.get(bucket, 0) + 1
    return sorted(scalar.items())


@dataclass(slots=True)
class Sample:
    """One point of a sampled time series."""

    time: int
    value: float


class Counter:
    """A single mutable counter cell.

    Components on hot paths hold a bound ``Counter`` and call
    :meth:`add` (or bump :attr:`value` directly), instead of paying a
    group lookup plus dict hashing for every event.
    """

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class StatGroup:
    """A flat bag of named counters and series for one component."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._series: Dict[str, List[Sample]] = {}

    # -- counters ----------------------------------------------------------

    def counter(self, key: str) -> Counter:
        """The (created-on-demand) counter cell for ``key``.

        The returned handle stays valid for the group's lifetime,
        including across :meth:`reset` (which zeroes cells in place).
        """
        cell = self._counters.get(key)
        if cell is None:
            cell = self._counters[key] = Counter()
        return cell

    def add(self, key: str, amount: int = 1) -> None:
        """Increment counter ``key`` by ``amount``."""
        cell = self._counters.get(key)
        if cell is None:
            cell = self._counters[key] = Counter()
        cell.value += amount

    def get(self, key: str, default: int = 0) -> int:
        cell = self._counters.get(key)
        return default if cell is None else cell.value

    def set(self, key: str, value: int) -> None:
        self.counter(key).value = value

    def counters(self) -> Dict[str, int]:
        """A copy of all counters."""
        return {key: cell.value for key, cell in self._counters.items()}

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` with a 0.0 fallback."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    # -- time series -------------------------------------------------------

    def sample(self, key: str, time: int, value: float) -> None:
        """Append a time-series sample."""
        self._series.setdefault(key, []).append(Sample(time, value))

    def series(self, key: str) -> List[Sample]:
        return list(self._series.get(key, []))

    def series_keys(self) -> List[str]:
        return sorted(self._series)

    # -- misc ---------------------------------------------------------------

    def reset(self) -> None:
        # Zero cells in place so pre-bound handles stay live.
        for cell in self._counters.values():
            cell.value = 0
        self._series.clear()

    def __repr__(self) -> str:
        return f"StatGroup({self.name!r}, {len(self._counters)} counters)"


class StatRegistry:
    """Named collection of stat groups for one simulation run."""

    def __init__(self) -> None:
        self._groups: Dict[str, StatGroup] = {}

    def group(self, name: str) -> StatGroup:
        """Get or create the group ``name``."""
        if name not in self._groups:
            self._groups[name] = StatGroup(name)
        return self._groups[name]

    def __contains__(self, name: str) -> bool:
        return name in self._groups

    def __getitem__(self, name: str) -> StatGroup:
        return self._groups[name]

    def items(self) -> Iterator[Tuple[str, StatGroup]]:
        return iter(sorted(self._groups.items()))

    def flat(self) -> Dict[str, int]:
        """All counters as ``"group.key" -> value``."""
        out: Dict[str, int] = {}
        for name, grp in self._groups.items():
            for key, value in grp.counters().items():
                out[f"{name}.{key}"] = value
        return out

    def reset(self) -> None:
        for grp in self._groups.values():
            grp.reset()

    def report(self) -> str:
        """Human-readable multi-line dump of every counter."""
        lines: List[str] = []
        for name, grp in self.items():
            counters = grp.counters()
            if not counters:
                continue
            lines.append(f"[{name}]")
            width = max(len(key) for key in counters)
            for key in sorted(counters):
                lines.append(f"  {key:<{width}}  {counters[key]}")
        return "\n".join(lines)
