"""Statistics collection.

Every component owns a :class:`StatGroup`; groups nest into a
:class:`StatRegistry` that the simulator exposes on its results object.
Counters are plain ints (cheap to bump on hot paths); time series support
the occupancy-over-time plots (paper Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple


@dataclass
class Sample:
    """One point of a sampled time series."""

    time: int
    value: float


class StatGroup:
    """A flat bag of named counters and series for one component."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, int] = {}
        self._series: Dict[str, List[Sample]] = {}

    # -- counters ----------------------------------------------------------

    def add(self, key: str, amount: int = 1) -> None:
        """Increment counter ``key`` by ``amount``."""
        self._counters[key] = self._counters.get(key, 0) + amount

    def get(self, key: str, default: int = 0) -> int:
        return self._counters.get(key, default)

    def set(self, key: str, value: int) -> None:
        self._counters[key] = value

    def counters(self) -> Dict[str, int]:
        """A copy of all counters."""
        return dict(self._counters)

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` with a 0.0 fallback."""
        denom = self._counters.get(denominator, 0)
        if denom == 0:
            return 0.0
        return self._counters.get(numerator, 0) / denom

    # -- time series -------------------------------------------------------

    def sample(self, key: str, time: int, value: float) -> None:
        """Append a time-series sample."""
        self._series.setdefault(key, []).append(Sample(time, value))

    def series(self, key: str) -> List[Sample]:
        return list(self._series.get(key, []))

    def series_keys(self) -> List[str]:
        return sorted(self._series)

    # -- misc ---------------------------------------------------------------

    def reset(self) -> None:
        self._counters.clear()
        self._series.clear()

    def __repr__(self) -> str:
        return f"StatGroup({self.name!r}, {len(self._counters)} counters)"


class StatRegistry:
    """Named collection of stat groups for one simulation run."""

    def __init__(self) -> None:
        self._groups: Dict[str, StatGroup] = {}

    def group(self, name: str) -> StatGroup:
        """Get or create the group ``name``."""
        if name not in self._groups:
            self._groups[name] = StatGroup(name)
        return self._groups[name]

    def __contains__(self, name: str) -> bool:
        return name in self._groups

    def __getitem__(self, name: str) -> StatGroup:
        return self._groups[name]

    def items(self) -> Iterator[Tuple[str, StatGroup]]:
        return iter(sorted(self._groups.items()))

    def flat(self) -> Dict[str, int]:
        """All counters as ``"group.key" -> value``."""
        out: Dict[str, int] = {}
        for name, grp in self._groups.items():
            for key, value in grp.counters().items():
                out[f"{name}.{key}"] = value
        return out

    def reset(self) -> None:
        for grp in self._groups.values():
            grp.reset()

    def report(self) -> str:
        """Human-readable multi-line dump of every counter."""
        lines: List[str] = []
        for name, grp in self.items():
            counters = grp.counters()
            if not counters:
                continue
            lines.append(f"[{name}]")
            width = max(len(key) for key in counters)
            for key in sorted(counters):
                lines.append(f"  {key:<{width}}  {counters[key]}")
        return "\n".join(lines)
