"""Shared value types, configuration, and statistics."""

from .config import (
    CacheLevelConfig,
    CpuConfig,
    MemoryConfig,
    PrefetcherConfig,
    SystemConfig,
)
from .errors import (
    AddressError,
    ConfigError,
    ProgramError,
    ReproError,
    SimulationError,
)
from .stats import StatGroup, StatRegistry
from .types import (
    AccessResult,
    AccessWidth,
    LINE_BYTES,
    LINES_PER_TILE,
    Orientation,
    Request,
    TILE_BYTES,
    WORD_BYTES,
    WORDS_PER_LINE,
    WORDS_PER_TILE,
)

__all__ = [
    "AccessResult",
    "AccessWidth",
    "AddressError",
    "CacheLevelConfig",
    "ConfigError",
    "CpuConfig",
    "LINE_BYTES",
    "LINES_PER_TILE",
    "MemoryConfig",
    "Orientation",
    "PrefetcherConfig",
    "ProgramError",
    "ReproError",
    "Request",
    "SimulationError",
    "StatGroup",
    "StatRegistry",
    "SystemConfig",
    "TILE_BYTES",
    "WORD_BYTES",
    "WORDS_PER_LINE",
    "WORDS_PER_TILE",
]
