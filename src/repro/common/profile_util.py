"""Opt-in cProfile wrapping for the CLI entry points.

``repro experiment <name> --profile`` (and the per-figure CLIs, e.g.
``python -m repro.experiments.fig12 --profile``) wrap the run in
:func:`profiled`: the raw profile is dumped to ``OUTDIR/profile.pstats``
for offline analysis (``python -m pstats``, snakeviz, gprof2dot) and
the top functions by cumulative time are printed to stderr so a quick
look needs no extra tooling.

:mod:`cProfile` observes only the calling process, so :func:`profiled`
additionally exports the profile directory through
:data:`PROFILE_DIR_ENV`; forked pool workers see it and wrap each job
in :func:`maybe_profile_worker`, dumping cumulative per-worker stats
to ``OUTDIR/profile.worker-<pid>.pstats``.  On exit the parent merges
every worker dump into ``profile.pstats``, so ``--profile --jobs N``
reports the simulation work itself — including the vectorized and
sharded replay paths that run inside workers.

Distinct from :mod:`repro.sw.profiling`, which implements the paper's
access-direction profiling pass — this module profiles the simulator
itself.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import sys
from contextlib import contextmanager
from typing import IO, Iterator, Optional

#: Name of the dump written inside the results directory.
PROFILE_FILENAME = "profile.pstats"

#: Environment variable carrying the profile directory from a
#: :func:`profiled` block to forked pool workers.
PROFILE_DIR_ENV = "REPRO_PROFILE_DIR"

#: Filename prefix of per-worker profile dumps.
WORKER_PROFILE_PREFIX = "profile.worker-"

#: How many functions the stderr summary shows.
TOP_FUNCTIONS = 20

#: Process-global worker profiler, created lazily on the first
#: profiled job so one worker accumulates across all its jobs.
_worker_profiler: Optional[cProfile.Profile] = None


def _worker_dumps(outdir: str) -> list:
    """Per-worker profile dump paths inside ``outdir``, sorted."""
    try:
        names = os.listdir(outdir)
    except OSError:
        return []
    return sorted(os.path.join(outdir, name) for name in names
                  if name.startswith(WORKER_PROFILE_PREFIX)
                  and name.endswith(".pstats"))


@contextmanager
def maybe_profile_worker() -> Iterator[None]:
    """Profile one pool-worker job when the parent asked for it.

    Active when an enclosing :func:`profiled` block exported
    :data:`PROFILE_DIR_ENV` (forked workers inherit the environment).
    One process-global profiler accumulates across this worker's jobs;
    after every job the cumulative stats overwrite the worker's
    ``profile.worker-<pid>.pstats``, so the dump is complete whenever
    the pool tears the worker down.  A no-op without the variable.
    """
    global _worker_profiler
    outdir = os.environ.get(PROFILE_DIR_ENV)
    if not outdir:
        yield
        return
    if _worker_profiler is None:
        _worker_profiler = cProfile.Profile()
    _worker_profiler.enable()
    try:
        yield
    finally:
        _worker_profiler.disable()
        try:
            _worker_profiler.dump_stats(os.path.join(
                outdir,
                f"{WORKER_PROFILE_PREFIX}{os.getpid()}.pstats"))
        except OSError:  # pragma: no cover - outdir vanished mid-run
            pass


@contextmanager
def profiled(outdir: str, enabled: bool = True,
             stream: Optional[IO[str]] = None) -> Iterator[None]:
    """Profile the enclosed block when ``enabled``.

    Writes ``<outdir>/profile.pstats`` (creating ``outdir`` if needed)
    and prints the top :data:`TOP_FUNCTIONS` entries sorted by
    cumulative time to ``stream`` (default: stderr).  Pool workers
    forked inside the block profile their jobs too (see
    :func:`maybe_profile_worker`); their dumps merge into the final
    ``profile.pstats``.  With ``enabled`` false the block runs
    untouched — callers wire the flag straight through without
    branching.
    """
    if not enabled:
        yield
        return
    out = stream if stream is not None else sys.stderr
    os.makedirs(outdir, exist_ok=True)
    # Stale worker dumps from a previous profiled run would merge into
    # this one's numbers; start clean.
    for stale in _worker_dumps(outdir):
        try:
            os.remove(stale)
        except OSError:
            pass
    prior = os.environ.get(PROFILE_DIR_ENV)
    os.environ[PROFILE_DIR_ENV] = os.path.abspath(outdir)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        if prior is None:
            os.environ.pop(PROFILE_DIR_ENV, None)
        else:
            os.environ[PROFILE_DIR_ENV] = prior
        path = os.path.join(outdir, PROFILE_FILENAME)
        profiler.dump_stats(path)
        stats = pstats.Stats(profiler, stream=out)
        merged = 0
        for dump in _worker_dumps(outdir):
            try:
                stats.add(dump)
                merged += 1
            except Exception:  # noqa: BLE001 - a torn dump is a skip
                continue
        if merged:
            # Re-dump so the on-disk profile matches the printed one:
            # parent scheduling plus every worker's simulation work.
            stats.dump_stats(path)
        stats.sort_stats("cumulative").print_stats(TOP_FUNCTIONS)
        suffix = f" (+{merged} worker profiles)" if merged else ""
        print(f"[profile] full profile written to {path}{suffix}",
              file=out)
