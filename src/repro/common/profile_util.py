"""Opt-in cProfile wrapping for the CLI entry points.

``repro experiment <name> --profile`` (and the per-figure CLIs, e.g.
``python -m repro.experiments.fig12 --profile``) wrap the run in
:func:`profiled`: the raw profile is dumped to ``OUTDIR/profile.pstats``
for offline analysis (``python -m pstats``, snakeviz, gprof2dot) and
the top functions by cumulative time are printed to stderr so a quick
look needs no extra tooling.

Distinct from :mod:`repro.sw.profiling`, which implements the paper's
access-direction profiling pass — this module profiles the simulator
itself.

Note: :mod:`cProfile` observes only the calling process.  Under
``--jobs N`` the forked pool workers run unprofiled; profile with
``--jobs 1`` to capture the simulation work itself.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import sys
from contextlib import contextmanager
from typing import IO, Iterator, Optional

#: Name of the dump written inside the results directory.
PROFILE_FILENAME = "profile.pstats"

#: How many functions the stderr summary shows.
TOP_FUNCTIONS = 20


@contextmanager
def profiled(outdir: str, enabled: bool = True,
             stream: Optional[IO[str]] = None) -> Iterator[None]:
    """Profile the enclosed block when ``enabled``.

    Writes ``<outdir>/profile.pstats`` (creating ``outdir`` if needed)
    and prints the top :data:`TOP_FUNCTIONS` entries sorted by
    cumulative time to ``stream`` (default: stderr).  With ``enabled``
    false the block runs untouched — callers wire the flag straight
    through without branching.
    """
    if not enabled:
        yield
        return
    out = stream if stream is not None else sys.stderr
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        os.makedirs(outdir, exist_ok=True)
        path = os.path.join(outdir, PROFILE_FILENAME)
        profiler.dump_stats(path)
        stats = pstats.Stats(profiler, stream=out)
        stats.sort_stats("cumulative").print_stats(TOP_FUNCTIONS)
        print(f"[profile] full profile written to {path}", file=out)
