"""Advisory file locking for the on-disk caches.

The run cache and the trace store were originally written under a
single-writer assumption: one ``repro`` invocation owns an OUTDIR, and
atomic ``os.replace`` renames were enough to keep entries internally
consistent.  Two concurrent invocations sharing an OUTDIR break that
assumption — their temp files collide only per-pid, but interleaved
directory mutations (store vs. clear vs. quarantine) can tear.

:func:`file_lock` replaces the assumption with an advisory
``fcntl.flock`` on a sidecar lock file, acquired non-blocking in a
bounded retry loop so a dead lock holder (the lock dies with its fd)
or a wedged one can never hang a sweep: on timeout the caller gets a
:class:`~repro.common.errors.LockTimeout`, which cache writers treat
as "skip this best-effort write" rather than as fatal.

On platforms without ``fcntl`` the lock degrades to a no-op, restoring
the documented single-writer contract there.
"""

from __future__ import annotations

import contextlib
import os
import random
import time
from typing import Callable, Iterator

from .errors import LockTimeout

try:  # pragma: no cover - import guard for non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

#: Default time budget for acquiring a cache lock, in seconds.  Cache
#: writes are small; anything holding the lock longer is wedged.
DEFAULT_LOCK_TIMEOUT = 10.0

#: Delay between non-blocking acquisition attempts, in seconds.  The
#: actual sleep is jittered in ``[poll/2, poll]`` so N processes that
#: all missed the same lock release do not re-collide in lockstep.
DEFAULT_LOCK_POLL = 0.05


@contextlib.contextmanager
def file_lock(path: str,
              timeout: float = DEFAULT_LOCK_TIMEOUT,
              poll: float = DEFAULT_LOCK_POLL,
              clock: Callable[[], float] = time.monotonic,
              sleep: Callable[[float], None] = time.sleep) \
        -> Iterator[None]:
    """Hold an exclusive advisory lock on ``path`` for the body.

    The lock file is created if missing (its parent directory must
    exist) and is never deleted — flock locks attach to the inode, so
    deleting the file would let a later acquirer lock a different
    inode and race the current holder.

    Raises:
        LockTimeout: the lock stayed held for longer than ``timeout``.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    handle = open(path, "a+b")
    try:
        deadline = clock() + timeout
        while True:
            try:
                fcntl.flock(handle.fileno(),
                            fcntl.LOCK_EX | fcntl.LOCK_NB)
                break
            except OSError:
                if clock() >= deadline:
                    raise LockTimeout(
                        f"could not lock {path} within {timeout:.1f}s")
                sleep(poll * (0.5 + 0.5 * random.random()))
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
    finally:
        handle.close()


def lock_path_for(root: str, name: str = ".lock") -> str:
    """The sidecar lock file guarding a cache directory's mutations."""
    return os.path.join(root, name)
