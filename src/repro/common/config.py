"""Configuration dataclasses for the simulator.

The defaults mirror the paper's Table I, scaled down by the capacity
factor discussed in DESIGN.md (matrices are 1/8 the linear dimension, so
working sets are 1/64 the capacity; caches are scaled to preserve the
working-set : capacity ratios that drive every result figure).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List

from .errors import ConfigError
from .types import LINE_BYTES, TILE_BYTES


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class PrefetcherConfig:
    """Reference-indexed stride prefetcher (baseline 1P1L only).

    Attributes:
        enabled: whether the prefetcher issues any prefetches.
        degree: number of lines prefetched ahead on a confirmed stride.
        table_entries: number of reference (PC) slots tracked.
        train_threshold: identical strides observed before prefetching.
    """

    enabled: bool = False
    degree: int = 4
    table_entries: int = 64
    train_threshold: int = 2

    def __post_init__(self) -> None:
        _require(self.degree >= 1, "prefetch degree must be >= 1")
        _require(self.table_entries >= 1, "prefetch table must be >= 1")
        _require(self.train_threshold >= 1, "train threshold must be >= 1")


@dataclass(frozen=True)
class CacheLevelConfig:
    """One cache level.

    ``physical_dims``/``logical_dims`` select the taxonomy point
    (paper Section IV-A): 1P1L conventional, 1P2L (orientation-tagged
    lines in SRAM), 2P2L (512-byte 2-D block frames in an on-chip
    crosspoint).

    Attributes:
        name: human-readable label ("L1", "L2", "L3").
        size_bytes: total data capacity.
        assoc: set associativity (in lines for *P1L/1P2L, in 2-D blocks
            for 2P2L).
        tag_latency: cycles for one tag probe.
        data_latency: cycles for a data array access.
        sequential_tag_data: True if data access starts after the tag
            check (L2/L3 in Table I); False for parallel access (L1).
        logical_dims: 1 or 2.
        physical_dims: 1 or 2.
        mapping: for 1P2L, "different_set" or "same_set" index mapping
            (paper Fig. 8 discussion).
        sparse_fill: for 2P2L, fill lines on demand instead of whole
            blocks (paper Section IV-B "sparse 2P2L").
        mshr_entries: outstanding distinct misses supported.
        write_extra_latency: extra cycles charged to data-array writes
            (models NVM read/write asymmetry, paper Fig. 16).
        prefetcher: optional stride prefetcher attached to this level.
        dynamic_orientation: for 1P2L levels, predict scalar access
            orientation at runtime instead of trusting the static
            annotation (paper Section IV-C extension).
    """

    name: str
    size_bytes: int
    assoc: int
    tag_latency: int
    data_latency: int
    sequential_tag_data: bool = True
    logical_dims: int = 1
    physical_dims: int = 1
    mapping: str = "different_set"
    sparse_fill: bool = True
    mshr_entries: int = 16
    write_extra_latency: int = 0
    prefetcher: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    dynamic_orientation: bool = False

    def __post_init__(self) -> None:
        _require(self.logical_dims in (1, 2), "logical_dims must be 1 or 2")
        _require(self.physical_dims in (1, 2), "physical_dims must be 1 or 2")
        _require(not (self.physical_dims == 2 and self.logical_dims == 1),
                 "2P1L is not modeled (paper elides it)")
        _require(self.mapping in ("different_set", "same_set"),
                 f"unknown mapping {self.mapping!r}")
        frame = TILE_BYTES if self.physical_dims == 2 else LINE_BYTES
        _require(self.size_bytes % frame == 0,
                 f"{self.name}: size must be a multiple of {frame} bytes")
        frames = self.size_bytes // frame
        _require(self.assoc >= 1, f"{self.name}: assoc must be >= 1")
        _require(frames % self.assoc == 0,
                 f"{self.name}: {frames} frames not divisible by "
                 f"assoc {self.assoc}")
        # Set counts need not be powers of two: indexing is modulo, which
        # also accommodates the paper's 1.5 MB LLC point.
        _require(self.tag_latency >= 1 and self.data_latency >= 1,
                 f"{self.name}: latencies must be >= 1 cycle")
        _require(self.mshr_entries >= 1,
                 f"{self.name}: mshr_entries must be >= 1")
        _require(self.write_extra_latency >= 0,
                 f"{self.name}: write_extra_latency must be >= 0")

    @property
    def frame_bytes(self) -> int:
        """Bytes per allocation frame (line or 2-D block)."""
        return TILE_BYTES if self.physical_dims == 2 else LINE_BYTES

    @property
    def num_frames(self) -> int:
        return self.size_bytes // self.frame_bytes

    @property
    def num_sets(self) -> int:
        return self.num_frames // self.assoc

    @property
    def hit_latency(self) -> int:
        """Cycles for a first-probe hit."""
        if self.sequential_tag_data:
            return self.tag_latency + self.data_latency
        return max(self.tag_latency, self.data_latency)

    @property
    def taxonomy(self) -> str:
        """Taxonomy label, e.g. "1P2L"."""
        return f"{self.physical_dims}P{self.logical_dims}L"


@dataclass(frozen=True)
class MemoryConfig:
    """MDA main memory timing and organization.

    Cycle values are CPU cycles at the 3 GHz clock of Table I.  The
    defaults approximate Everspin-class STT-MRAM behind a conventional
    channel: a buffer (row or column) activation is the expensive
    operation; a buffer hit pays only the CAS-like access plus burst.

    Attributes:
        channels / ranks_per_channel / banks_per_rank: topology.
        activate_cycles: array row/column open into its buffer.
        buffer_access_cycles: open-buffer access to first data beat.
        write_cycles: array write (STT writes are slow).
        burst_cycles: data-bus occupancy for one 64-byte line.
        column_decode_extra: extra cycles on column-mode decode
            (paper Section VI-B: one additional cycle).
        write_queue_high / write_queue_low: WQF drain watermarks.
        speed_factor: divide all array timings by this (paper Fig. 17
            evaluates a 1.6x faster memory).
        tile_cols_per_bank: tiles spanned by one physical array row; a
            bank's row buffer covers one (tile-row, line) pair across
            this many tiles, and symmetrically for the column buffer.
        sub_buffers: open rows/columns each bank keeps simultaneously
            (the Gulur et al. multiple sub-row-buffer scheme the paper
            compares against in Section IX-B; 1 = a single open page).
    """

    channels: int = 4
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    tile_cols_per_bank: int = 8
    sub_buffers: int = 1
    activate_cycles: int = 90
    buffer_access_cycles: int = 45
    write_cycles: int = 150
    burst_cycles: int = 16
    column_decode_extra: int = 1
    write_queue_high: int = 32
    write_queue_low: int = 16
    speed_factor: float = 1.0

    def __post_init__(self) -> None:
        _require(self.channels >= 1, "channels must be >= 1")
        _require(self.ranks_per_channel >= 1, "ranks must be >= 1")
        _require(self.banks_per_rank >= 1, "banks must be >= 1")
        _require(_is_power_of_two(self.channels), "channels: power of two")
        _require(_is_power_of_two(self.ranks_per_channel),
                 "ranks: power of two")
        _require(_is_power_of_two(self.banks_per_rank),
                 "banks: power of two")
        _require(_is_power_of_two(self.tile_cols_per_bank),
                 "tile_cols_per_bank: power of two")
        _require(self.sub_buffers >= 1, "sub_buffers must be >= 1")
        for label in ("activate_cycles", "buffer_access_cycles",
                      "write_cycles", "burst_cycles"):
            _require(getattr(self, label) >= 1, f"{label} must be >= 1")
        _require(self.column_decode_extra >= 0,
                 "column_decode_extra must be >= 0")
        _require(0 < self.write_queue_low <= self.write_queue_high,
                 "write queue watermarks must satisfy 0 < low <= high")
        _require(self.speed_factor > 0, "speed_factor must be positive")

    def scaled(self, cycles: int) -> int:
        """Apply the speed factor to an array timing value."""
        return max(1, round(cycles / self.speed_factor))

    def faster(self, factor: float) -> "MemoryConfig":
        """A copy of this config with all array timings sped up."""
        return replace(self, speed_factor=self.speed_factor * factor)


#: Operating modes of the die-stacked tier (Bakhshalipour et al.,
#: "Die-Stacked DRAM: Memory, Cache, or MemCache?"): one structure,
#: three personalities, selected by configuration instead of forked
#: designs.
TIER_MODES = ("disabled", "cache", "flat", "hybrid")


@dataclass(frozen=True)
class TierConfig:
    """A die-stacked DRAM tier between the LLC and the MDA memory.

    Modes (see ``docs/DESIGN.md``, "Die-stacked tier"):

    * ``disabled`` — the LLC talks straight to the MDA memory (the
      paper's baseline hierarchy; the default).
    * ``cache`` — a tag-in-DRAM set-associative cache of oriented
      lines.  Tags are co-located with data in the DRAM row (TDRAM,
      Babaie et al.), so one row activation resolves tag *and* data:
      a hit costs exactly the stacked-DRAM access, a miss pays the
      same probe before going below.
    * ``flat`` — an addressable fast region absorbing the hottest
      address range (the first ``size_bytes`` of the tile space);
      everything else passes through to MDA memory untouched.
    * ``hybrid`` — ``cache_fraction`` of the capacity runs as cache
      ways, the remainder as flat memory (a configurable MemCache
      split).

    With ``rbla`` on, cache installs follow the row-buffer-locality-
    aware policy of Meza et al.: a miss whose slow-side access would
    have been an open-buffer hit is *not* installed (MDA serves it
    cheaply anyway), while lines from buffer-conflicting regions
    install once the region has conflicted ``rbla_threshold`` times.

    Attributes:
        mode: one of :data:`TIER_MODES`.
        size_bytes: total tier capacity.  Cache/hybrid capacity must
            be a whole number of ways (``assoc * 64`` bytes); flat
            capacity is tile-granular (512 bytes).  0 with mode
            ``flat`` means "no fast range" and disables the tier.
        assoc: cache-mode set associativity (in lines).
        row_bytes: stacked-DRAM row size (the open-row granularity).
        banks: stacked-DRAM bank count.
        activate_cycles: row activation (tag+data, TDRAM folded).
        access_cycles: open-row read to critical word.
        write_cycles: open-row write.
        cache_fraction: hybrid-mode share of capacity run as cache
            ways (1.0 makes hybrid identical to ``cache`` mode).
        rbla: enable the Meza-style install policy.
        rbla_threshold: slow-side row conflicts a region accumulates
            before its lines start installing.
    """

    mode: str = "disabled"
    size_bytes: int = 0
    assoc: int = 8
    row_bytes: int = 2048
    banks: int = 8
    activate_cycles: int = 24
    access_cycles: int = 12
    write_cycles: int = 18
    cache_fraction: float = 0.5
    rbla: bool = True
    rbla_threshold: int = 2

    def __post_init__(self) -> None:
        _require(self.mode in TIER_MODES,
                 f"tier mode must be one of {TIER_MODES}, "
                 f"got {self.mode!r}")
        _require(self.size_bytes >= 0, "tier size_bytes must be >= 0")
        _require(self.assoc >= 1, "tier assoc must be >= 1")
        _require(_is_power_of_two(self.row_bytes)
                 and self.row_bytes >= LINE_BYTES,
                 f"tier row_bytes must be a power of two >= "
                 f"{LINE_BYTES}")
        _require(_is_power_of_two(self.banks),
                 "tier banks must be a power of two")
        for label in ("activate_cycles", "access_cycles",
                      "write_cycles"):
            _require(getattr(self, label) >= 1,
                     f"tier {label} must be >= 1")
        _require(0.0 <= self.cache_fraction <= 1.0,
                 "tier cache_fraction must be in [0, 1]")
        _require(self.rbla_threshold >= 1,
                 "tier rbla_threshold must be >= 1")
        way_bytes = self.assoc * LINE_BYTES
        if self.mode in ("cache", "hybrid"):
            _require(self.size_bytes > 0,
                     f"tier mode {self.mode!r} needs size_bytes > 0")
            _require(self.size_bytes % way_bytes == 0,
                     f"tier size must be a multiple of one way "
                     f"({way_bytes} bytes)")
        if self.mode == "flat":
            _require(self.size_bytes % TILE_BYTES == 0,
                     f"tier flat size must be a multiple of "
                     f"{TILE_BYTES} bytes")

    @property
    def active(self) -> bool:
        """Whether a tier component exists at all.

        ``flat`` with zero capacity is *identical* to ``disabled`` —
        no tier object, no stat groups, bit-identical runs.
        """
        return self.mode != "disabled" and self.size_bytes > 0

    @property
    def cache_bytes(self) -> int:
        """Capacity run as cache ways (mode-resolved)."""
        if self.mode == "cache":
            return self.size_bytes
        if self.mode == "hybrid":
            way_bytes = self.assoc * LINE_BYTES
            ways = int(self.size_bytes * self.cache_fraction) \
                // way_bytes
            return ways * way_bytes
        return 0

    @property
    def flat_bytes(self) -> int:
        """Capacity run as flat addressable memory (mode-resolved)."""
        if self.mode == "flat":
            return self.size_bytes
        if self.mode == "hybrid":
            return self.size_bytes - self.cache_bytes
        return 0

    @property
    def taxonomy(self) -> str:
        """Tier taxonomy tag, e.g. ``+DC$`` (see ``describe()``)."""
        return {"cache": "+DC$", "flat": "+DFlat",
                "hybrid": "+DC$/Flat"}.get(self.mode, "")


@dataclass(frozen=True)
class CpuConfig:
    """Trace-driven CPU timing model.

    Stands in for the paper's gem5 OoO x86 core: the core retires one
    trace operation per ``cycles_per_op`` when data is ready, and can
    overlap up to ``mlp_window`` outstanding misses (a stand-in for the
    OoO load queue; the default matches the L1 MSHR capacity).
    """

    cycles_per_op: int = 1
    mlp_window: int = 16

    def __post_init__(self) -> None:
        _require(self.cycles_per_op >= 1, "cycles_per_op must be >= 1")
        _require(self.mlp_window >= 1, "mlp_window must be >= 1")


@dataclass(frozen=True)
class SystemConfig:
    """A full simulated system: cache levels (L1 first), memory, CPU."""

    levels: List[CacheLevelConfig]
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    name: str = "system"
    tier: TierConfig = field(default_factory=TierConfig)

    def __post_init__(self) -> None:
        _require(len(self.levels) >= 1, "need at least one cache level")
        for upper, lower in zip(self.levels, self.levels[1:]):
            _require(upper.size_bytes <= lower.size_bytes,
                     f"{upper.name} larger than {lower.name}")
            _require(not (upper.physical_dims == 2
                          and lower.physical_dims == 1),
                     "a 2P2L level above a 1-D level is not modeled")
            _require(not (upper.logical_dims == 2 and lower.logical_dims == 1),
                     "a logically 2-D level above a logically 1-D level "
                     "would drop orientation information")

    @property
    def llc(self) -> CacheLevelConfig:
        return self.levels[-1]

    @property
    def logical_dims(self) -> int:
        """Logical dimensionality presented to software (L1's)."""
        return self.levels[0].logical_dims

    def describe(self) -> str:
        """One-line summary, e.g. "1P2L/1P2L/2P2L +DC$ + MDA"."""
        chain = "/".join(level.taxonomy for level in self.levels)
        if self.tier.active:
            return f"{self.name}: {chain} {self.tier.taxonomy} + MDA"
        return f"{self.name}: {chain}"


DEFAULT_MLP_WINDOW = CpuConfig().mlp_window


# -- config overrides ---------------------------------------------------------
#
# The simulation service accepts per-request SystemConfig overrides as
# dotted paths ("cpu.mlp_window", "memory.sub_buffers", "llc.assoc").
# Overrides funnel through apply_overrides so every entry point applies
# them identically and every value is re-validated by the dataclass
# __post_init__ checks above.

#: Override targets: dotted-path prefix -> SystemConfig attribute.
#: ``llc`` addresses the last cache level; ``cpu``, ``memory``, and
#: ``tier`` their sub-configs.  Structural fields (the level stack
#: itself) are not overridable — they are what the design name selects.
OVERRIDE_SCOPES = ("cpu", "memory", "llc", "tier")

#: Fields that cannot be overridden even inside a valid scope (they
#: change identity, not behavior).
_OVERRIDE_BLOCKED = frozenset({"name"})


def _check_override(obj, field_name: str, value) -> None:
    """Schema check for one override pair against its target config."""
    if field_name in _OVERRIDE_BLOCKED or field_name.startswith("_"):
        raise ConfigError(f"field {field_name!r} is not overridable")
    fields = {f.name for f in obj.__dataclass_fields__.values()}
    if field_name not in fields:
        raise ConfigError(
            f"unknown field {field_name!r} on {type(obj).__name__}")
    if not isinstance(value, (bool, int, float, str)):
        raise ConfigError(
            f"override value for {field_name!r} must be a scalar, "
            f"got {type(value).__name__}")


def apply_overrides(system: "SystemConfig", overrides) -> "SystemConfig":
    """A copy of ``system`` with dotted-path overrides applied.

    ``overrides`` maps ``"scope.field"`` (scope in
    :data:`OVERRIDE_SCOPES`) to a scalar value, e.g.
    ``{"cpu.mlp_window": 8, "memory.sub_buffers": 4,
    "llc.mshr_entries": 32}``.  Overrides within one scope apply
    atomically — interdependent fields such as ``tier.mode`` and
    ``tier.size_bytes`` validate together, not one replace at a time.
    Every resulting config re-runs its ``__post_init__`` validation;
    any malformed path, unknown field, or invalid value raises
    :class:`ConfigError`.
    """
    if not overrides:
        return system
    targets = {"cpu": system.cpu, "memory": system.memory,
               "llc": system.levels[-1], "tier": system.tier}
    staged: Dict[str, Dict[str, object]] = \
        {scope: {} for scope in OVERRIDE_SCOPES}
    for path in sorted(overrides):
        value = overrides[path]
        scope, dot, field_name = str(path).partition(".")
        if not dot or not field_name or "." in field_name:
            raise ConfigError(
                f"override path {path!r} must be 'scope.field' with "
                f"scope in {OVERRIDE_SCOPES}")
        if scope not in staged:
            raise ConfigError(
                f"unknown override scope {scope!r}; expected one of "
                f"{OVERRIDE_SCOPES}")
        _check_override(targets[scope], field_name, value)
        staged[scope][field_name] = value

    def _apply(scope: str):
        changes = staged[scope]
        return replace(targets[scope], **changes) if changes \
            else targets[scope]

    levels = list(system.levels)
    levels[-1] = _apply("llc")
    return replace(system, cpu=_apply("cpu"), memory=_apply("memory"),
                   levels=levels, tier=_apply("tier"))
