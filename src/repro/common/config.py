"""Configuration dataclasses for the simulator.

The defaults mirror the paper's Table I, scaled down by the capacity
factor discussed in DESIGN.md (matrices are 1/8 the linear dimension, so
working sets are 1/64 the capacity; caches are scaled to preserve the
working-set : capacity ratios that drive every result figure).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List

from .errors import ConfigError
from .types import LINE_BYTES, TILE_BYTES


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class PrefetcherConfig:
    """Reference-indexed stride prefetcher (baseline 1P1L only).

    Attributes:
        enabled: whether the prefetcher issues any prefetches.
        degree: number of lines prefetched ahead on a confirmed stride.
        table_entries: number of reference (PC) slots tracked.
        train_threshold: identical strides observed before prefetching.
    """

    enabled: bool = False
    degree: int = 4
    table_entries: int = 64
    train_threshold: int = 2

    def __post_init__(self) -> None:
        _require(self.degree >= 1, "prefetch degree must be >= 1")
        _require(self.table_entries >= 1, "prefetch table must be >= 1")
        _require(self.train_threshold >= 1, "train threshold must be >= 1")


@dataclass(frozen=True)
class CacheLevelConfig:
    """One cache level.

    ``physical_dims``/``logical_dims`` select the taxonomy point
    (paper Section IV-A): 1P1L conventional, 1P2L (orientation-tagged
    lines in SRAM), 2P2L (512-byte 2-D block frames in an on-chip
    crosspoint).

    Attributes:
        name: human-readable label ("L1", "L2", "L3").
        size_bytes: total data capacity.
        assoc: set associativity (in lines for *P1L/1P2L, in 2-D blocks
            for 2P2L).
        tag_latency: cycles for one tag probe.
        data_latency: cycles for a data array access.
        sequential_tag_data: True if data access starts after the tag
            check (L2/L3 in Table I); False for parallel access (L1).
        logical_dims: 1 or 2.
        physical_dims: 1 or 2.
        mapping: for 1P2L, "different_set" or "same_set" index mapping
            (paper Fig. 8 discussion).
        sparse_fill: for 2P2L, fill lines on demand instead of whole
            blocks (paper Section IV-B "sparse 2P2L").
        mshr_entries: outstanding distinct misses supported.
        write_extra_latency: extra cycles charged to data-array writes
            (models NVM read/write asymmetry, paper Fig. 16).
        prefetcher: optional stride prefetcher attached to this level.
        dynamic_orientation: for 1P2L levels, predict scalar access
            orientation at runtime instead of trusting the static
            annotation (paper Section IV-C extension).
    """

    name: str
    size_bytes: int
    assoc: int
    tag_latency: int
    data_latency: int
    sequential_tag_data: bool = True
    logical_dims: int = 1
    physical_dims: int = 1
    mapping: str = "different_set"
    sparse_fill: bool = True
    mshr_entries: int = 16
    write_extra_latency: int = 0
    prefetcher: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    dynamic_orientation: bool = False

    def __post_init__(self) -> None:
        _require(self.logical_dims in (1, 2), "logical_dims must be 1 or 2")
        _require(self.physical_dims in (1, 2), "physical_dims must be 1 or 2")
        _require(not (self.physical_dims == 2 and self.logical_dims == 1),
                 "2P1L is not modeled (paper elides it)")
        _require(self.mapping in ("different_set", "same_set"),
                 f"unknown mapping {self.mapping!r}")
        frame = TILE_BYTES if self.physical_dims == 2 else LINE_BYTES
        _require(self.size_bytes % frame == 0,
                 f"{self.name}: size must be a multiple of {frame} bytes")
        frames = self.size_bytes // frame
        _require(self.assoc >= 1, f"{self.name}: assoc must be >= 1")
        _require(frames % self.assoc == 0,
                 f"{self.name}: {frames} frames not divisible by "
                 f"assoc {self.assoc}")
        # Set counts need not be powers of two: indexing is modulo, which
        # also accommodates the paper's 1.5 MB LLC point.
        _require(self.tag_latency >= 1 and self.data_latency >= 1,
                 f"{self.name}: latencies must be >= 1 cycle")
        _require(self.mshr_entries >= 1,
                 f"{self.name}: mshr_entries must be >= 1")
        _require(self.write_extra_latency >= 0,
                 f"{self.name}: write_extra_latency must be >= 0")

    @property
    def frame_bytes(self) -> int:
        """Bytes per allocation frame (line or 2-D block)."""
        return TILE_BYTES if self.physical_dims == 2 else LINE_BYTES

    @property
    def num_frames(self) -> int:
        return self.size_bytes // self.frame_bytes

    @property
    def num_sets(self) -> int:
        return self.num_frames // self.assoc

    @property
    def hit_latency(self) -> int:
        """Cycles for a first-probe hit."""
        if self.sequential_tag_data:
            return self.tag_latency + self.data_latency
        return max(self.tag_latency, self.data_latency)

    @property
    def taxonomy(self) -> str:
        """Taxonomy label, e.g. "1P2L"."""
        return f"{self.physical_dims}P{self.logical_dims}L"


@dataclass(frozen=True)
class MemoryConfig:
    """MDA main memory timing and organization.

    Cycle values are CPU cycles at the 3 GHz clock of Table I.  The
    defaults approximate Everspin-class STT-MRAM behind a conventional
    channel: a buffer (row or column) activation is the expensive
    operation; a buffer hit pays only the CAS-like access plus burst.

    Attributes:
        channels / ranks_per_channel / banks_per_rank: topology.
        activate_cycles: array row/column open into its buffer.
        buffer_access_cycles: open-buffer access to first data beat.
        write_cycles: array write (STT writes are slow).
        burst_cycles: data-bus occupancy for one 64-byte line.
        column_decode_extra: extra cycles on column-mode decode
            (paper Section VI-B: one additional cycle).
        write_queue_high / write_queue_low: WQF drain watermarks.
        speed_factor: divide all array timings by this (paper Fig. 17
            evaluates a 1.6x faster memory).
        tile_cols_per_bank: tiles spanned by one physical array row; a
            bank's row buffer covers one (tile-row, line) pair across
            this many tiles, and symmetrically for the column buffer.
        sub_buffers: open rows/columns each bank keeps simultaneously
            (the Gulur et al. multiple sub-row-buffer scheme the paper
            compares against in Section IX-B; 1 = a single open page).
    """

    channels: int = 4
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    tile_cols_per_bank: int = 8
    sub_buffers: int = 1
    activate_cycles: int = 90
    buffer_access_cycles: int = 45
    write_cycles: int = 150
    burst_cycles: int = 16
    column_decode_extra: int = 1
    write_queue_high: int = 32
    write_queue_low: int = 16
    speed_factor: float = 1.0

    def __post_init__(self) -> None:
        _require(self.channels >= 1, "channels must be >= 1")
        _require(self.ranks_per_channel >= 1, "ranks must be >= 1")
        _require(self.banks_per_rank >= 1, "banks must be >= 1")
        _require(_is_power_of_two(self.channels), "channels: power of two")
        _require(_is_power_of_two(self.ranks_per_channel),
                 "ranks: power of two")
        _require(_is_power_of_two(self.banks_per_rank),
                 "banks: power of two")
        _require(_is_power_of_two(self.tile_cols_per_bank),
                 "tile_cols_per_bank: power of two")
        _require(self.sub_buffers >= 1, "sub_buffers must be >= 1")
        for label in ("activate_cycles", "buffer_access_cycles",
                      "write_cycles", "burst_cycles"):
            _require(getattr(self, label) >= 1, f"{label} must be >= 1")
        _require(self.column_decode_extra >= 0,
                 "column_decode_extra must be >= 0")
        _require(0 < self.write_queue_low <= self.write_queue_high,
                 "write queue watermarks must satisfy 0 < low <= high")
        _require(self.speed_factor > 0, "speed_factor must be positive")

    def scaled(self, cycles: int) -> int:
        """Apply the speed factor to an array timing value."""
        return max(1, round(cycles / self.speed_factor))

    def faster(self, factor: float) -> "MemoryConfig":
        """A copy of this config with all array timings sped up."""
        return replace(self, speed_factor=self.speed_factor * factor)


@dataclass(frozen=True)
class CpuConfig:
    """Trace-driven CPU timing model.

    Stands in for the paper's gem5 OoO x86 core: the core retires one
    trace operation per ``cycles_per_op`` when data is ready, and can
    overlap up to ``mlp_window`` outstanding misses (a stand-in for the
    OoO load queue; the default matches the L1 MSHR capacity).
    """

    cycles_per_op: int = 1
    mlp_window: int = 16

    def __post_init__(self) -> None:
        _require(self.cycles_per_op >= 1, "cycles_per_op must be >= 1")
        _require(self.mlp_window >= 1, "mlp_window must be >= 1")


@dataclass(frozen=True)
class SystemConfig:
    """A full simulated system: cache levels (L1 first), memory, CPU."""

    levels: List[CacheLevelConfig]
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    name: str = "system"

    def __post_init__(self) -> None:
        _require(len(self.levels) >= 1, "need at least one cache level")
        for upper, lower in zip(self.levels, self.levels[1:]):
            _require(upper.size_bytes <= lower.size_bytes,
                     f"{upper.name} larger than {lower.name}")
            _require(not (upper.physical_dims == 2
                          and lower.physical_dims == 1),
                     "a 2P2L level above a 1-D level is not modeled")
            _require(not (upper.logical_dims == 2 and lower.logical_dims == 1),
                     "a logically 2-D level above a logically 1-D level "
                     "would drop orientation information")

    @property
    def llc(self) -> CacheLevelConfig:
        return self.levels[-1]

    @property
    def logical_dims(self) -> int:
        """Logical dimensionality presented to software (L1's)."""
        return self.levels[0].logical_dims

    def describe(self) -> str:
        """One-line summary, e.g. "1P2L/1P2L/2P2L + MDA memory"."""
        chain = "/".join(level.taxonomy for level in self.levels)
        return f"{self.name}: {chain}"


DEFAULT_MLP_WINDOW = CpuConfig().mlp_window


# -- config overrides ---------------------------------------------------------
#
# The simulation service accepts per-request SystemConfig overrides as
# dotted paths ("cpu.mlp_window", "memory.sub_buffers", "llc.assoc").
# Overrides funnel through apply_overrides so every entry point applies
# them identically and every value is re-validated by the dataclass
# __post_init__ checks above.

#: Override targets: dotted-path prefix -> SystemConfig attribute.
#: ``llc`` addresses the last cache level; ``cpu`` and ``memory`` their
#: sub-configs.  Structural fields (the level stack itself) are not
#: overridable — they are what the design name selects.
OVERRIDE_SCOPES = ("cpu", "memory", "llc")

#: Fields that cannot be overridden even inside a valid scope (they
#: change identity, not behavior).
_OVERRIDE_BLOCKED = frozenset({"name"})


def _override_one(obj, field_name: str, value):
    """``replace(obj, field=value)`` with schema checking."""
    if field_name in _OVERRIDE_BLOCKED or field_name.startswith("_"):
        raise ConfigError(f"field {field_name!r} is not overridable")
    fields = {f.name for f in obj.__dataclass_fields__.values()}
    if field_name not in fields:
        raise ConfigError(
            f"unknown field {field_name!r} on {type(obj).__name__}")
    if not isinstance(value, (bool, int, float, str)):
        raise ConfigError(
            f"override value for {field_name!r} must be a scalar, "
            f"got {type(value).__name__}")
    return replace(obj, **{field_name: value})


def apply_overrides(system: "SystemConfig", overrides) -> "SystemConfig":
    """A copy of ``system`` with dotted-path overrides applied.

    ``overrides`` maps ``"scope.field"`` (scope in
    :data:`OVERRIDE_SCOPES`) to a scalar value, e.g.
    ``{"cpu.mlp_window": 8, "memory.sub_buffers": 4,
    "llc.mshr_entries": 32}``.  Every resulting config re-runs its
    ``__post_init__`` validation; any malformed path, unknown field, or
    invalid value raises :class:`ConfigError`.
    """
    if not overrides:
        return system
    cpu, memory, levels = system.cpu, system.memory, list(system.levels)
    for path in sorted(overrides):
        value = overrides[path]
        scope, dot, field_name = str(path).partition(".")
        if not dot or not field_name or "." in field_name:
            raise ConfigError(
                f"override path {path!r} must be 'scope.field' with "
                f"scope in {OVERRIDE_SCOPES}")
        if scope == "cpu":
            cpu = _override_one(cpu, field_name, value)
        elif scope == "memory":
            memory = _override_one(memory, field_name, value)
        elif scope == "llc":
            levels[-1] = _override_one(levels[-1], field_name, value)
        else:
            raise ConfigError(
                f"unknown override scope {scope!r}; expected one of "
                f"{OVERRIDE_SCOPES}")
    return replace(system, cpu=cpu, memory=memory, levels=levels)
