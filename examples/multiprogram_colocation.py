#!/usr/bin/env python
"""Co-locating programs on a shared MDA memory system.

Runs an analytics program (htap1) next to a transactional one (htap2)
on two cores with private L1/L2 over a shared LLC and MDA memory, for
each cache design, and shows:

* how much each program slows down from co-location (vs running alone);
* that MDA caching keeps helping under contention;
* the paper's Section IX-B point that multiple sub-row buffers — nearly
  worthless for one thread — matter once two threads interleave their
  bank accesses.
"""

from repro.common.config import MemoryConfig
from repro.core.multicore import run_multiprogrammed
from repro.core.simulator import run_simulation
from repro.core.system import make_system
from repro.workloads.registry import build_workload

LEFT, RIGHT = "htap1", "htap2"


def main() -> None:
    programs = [build_workload(LEFT, "small"),
                build_workload(RIGHT, "small")]
    print(f"Co-locating {LEFT} and {RIGHT} on two cores "
          f"(shared LLC + MDA memory)\n")

    header = (f"{'design':<14} {'makespan':>9} "
              f"{LEFT + ' slowdown':>16} {RIGHT + ' slowdown':>16}")
    print(header)
    print("-" * len(header))
    makespans = {}
    for design in ("1P1L", "1P2L", "2P2L"):
        solo = {name: run_simulation(make_system(design),
                                     workload=name, size="small").cycles
                for name in (LEFT, RIGHT)}
        pair = run_multiprogrammed(make_system(design), programs)
        makespans[design] = pair.makespan
        by_name = {core.workload: core.cycles for core in pair.cores}
        print(f"{design:<14} {pair.makespan:>9} "
              f"{by_name[LEFT] / solo[LEFT]:>15.2f}x "
              f"{by_name[RIGHT] / solo[RIGHT]:>15.2f}x")

    print(f"\nMDA caching under contention: 1P2L at "
          f"{makespans['1P1L'] / makespans['1P2L']:.2f}x the baseline "
          f"pair's throughput.")

    one = run_multiprogrammed(make_system("1P1L"), programs)
    four = run_multiprogrammed(
        make_system("1P1L", memory=MemoryConfig(sub_buffers=4)),
        programs)
    print(f"Multiple sub-row buffers (1 -> 4) speed the baseline pair "
          f"up {one.makespan / four.makespan:.2f}x\n(single-threaded "
          f"they are worth <5%; paper Section IX-B).")


if __name__ == "__main__":
    main()
