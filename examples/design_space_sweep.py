#!/usr/bin/env python
"""Design-space sweep: every design point across LLC capacities.

A miniature of the paper's Fig. 12 for a single kernel of your choice:
sweeps the scaled LLC over the paper's {1, 1.5, 2, 4} MB points for
every cache design (including the dense-fill and slow-write 2P2L
ablations and the Design 3 extension) and prints normalized execution
time against the prefetching 1P1L baseline.

Usage::

    python examples/design_space_sweep.py [workload] [small|large]
"""

import sys

from repro.core.simulator import run_simulation
from repro.core.system import LLC_SIZES, make_system

DESIGNS = ("1P2L", "1P2L_SameSet", "2P2L", "2P2L_Dense",
           "2P2L_SlowWrite", "2P2L_L1")


def main() -> None:
    # sgemm/small crosses the residency boundary inside the sweep, so
    # the default output shows real LLC sensitivity.
    workload = sys.argv[1] if len(sys.argv) > 1 else "sgemm"
    size = sys.argv[2] if len(sys.argv) > 2 else "small"
    llc_points = sorted(LLC_SIZES)
    print(f"Normalized cycles for {workload} ({size} input), "
          f"lower is better:\n")
    header = f"{'design':<16}" + "".join(
        f"{f'{mb}MB':>10}" for mb in llc_points)
    print(header)
    print("-" * len(header))
    baselines = {
        mb: run_simulation(make_system("1P1L", mb), workload=workload,
                           size=size).cycles
        for mb in llc_points
    }
    for design in DESIGNS:
        cells = []
        for mb in llc_points:
            result = run_simulation(make_system(design, mb),
                                    workload=workload, size=size)
            cells.append(f"{result.cycles / baselines[mb]:>10.3f}")
        print(f"{design:<16}" + "".join(cells))
    print("\n(LLC labels are the paper's capacities; the simulated "
          "caches are scaled by 64x,\nsee DESIGN.md.)")


if __name__ == "__main__":
    main()
