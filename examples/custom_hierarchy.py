#!/usr/bin/env python
"""Building a system configuration by hand.

The design points in ``repro.core.system`` cover the paper, but every
knob is an ordinary dataclass field.  This example assembles a custom
hybrid: a dynamic-orientation 1P2L L1 over a *dense*-fill 2P2L LLC with
asymmetric writes, on a fast 8-channel memory with 2 sub-buffers per
bank — then compares it against the stock design points on a custom
kernel.
"""

from repro.common.config import (
    CacheLevelConfig,
    CpuConfig,
    MemoryConfig,
    SystemConfig,
)
from repro.core.simulator import run_simulation
from repro.core.system import make_system
from repro.workloads.registry import build_workload


def custom_system() -> SystemConfig:
    l1 = CacheLevelConfig(
        name="L1", size_bytes=4 * 1024, assoc=4,
        tag_latency=2, data_latency=2, sequential_tag_data=False,
        logical_dims=2, physical_dims=1,
        dynamic_orientation=True,        # Section IV-C extension
    )
    l2 = CacheLevelConfig(
        name="L2", size_bytes=8 * 1024, assoc=8,
        tag_latency=6, data_latency=9,
        logical_dims=2, physical_dims=1,
    )
    llc = CacheLevelConfig(
        name="L3", size_bytes=32 * 1024, assoc=8,
        tag_latency=8, data_latency=14,
        logical_dims=2, physical_dims=2,
        sparse_fill=False,               # dense 2-D block fill
        write_extra_latency=10,          # mild NVM write asymmetry
    )
    memory = MemoryConfig(channels=8, sub_buffers=2).faster(1.3)
    return SystemConfig(levels=[l1, l2, llc], memory=memory,
                        cpu=CpuConfig(mlp_window=24),
                        name="custom-hybrid")


def main() -> None:
    program = build_workload("covariance", "small")
    print(f"Workload: {program.name} "
          f"({', '.join(n.name for n in program.nests)})\n")
    rows = []
    for label, system in (
            ("1P1L stock", make_system("1P1L", 2.0)),
            ("1P2L stock", make_system("1P2L", 2.0)),
            ("2P2L stock", make_system("2P2L", 2.0)),
            ("custom hybrid", custom_system())):
        result = run_simulation(system, program=program)
        rows.append((label, result.cycles, result.memory_bytes()))
    base = rows[0][1]
    print(f"{'system':<14} {'cycles':>9} {'normalized':>11} "
          f"{'mem bytes':>10}")
    for label, cycles, mem in rows:
        print(f"{label:<14} {cycles:>9} {cycles / base:>11.3f} "
              f"{mem:>10}")
    print("\nEvery field above is a validated dataclass knob — see "
          "docs/API.md and\nrepro.common.config for the full list.")


if __name__ == "__main__":
    main()
