#!/usr/bin/env python
"""HTAP scenario: one table serving transactions and analytics.

The paper's Section V-A motivates MDA caching with column-IO databases:
"Providing similar cost accesses to both row and column access patterns
would allow for greater flexibility...".  This example builds a custom
hybrid workload — row-oriented order inserts plus column-oriented
revenue aggregation over the same table — and compares how each cache
design handles it, including the per-direction memory-buffer behavior.
"""

from repro.common.types import Orientation
from repro.core.simulator import run_simulation
from repro.core.system import make_system
from repro.sw.program import Affine, ArrayDecl, ArrayRef, Loop, LoopNest, Program

ROWS, COLS = 192, 32  # orders x attributes


def build_order_table_workload() -> Program:
    table = ArrayDecl("Orders", ROWS, COLS)
    # OLTP: insert/update a third of the orders (full-row writes).
    inserts = LoopNest(
        name="order_inserts",
        loops=[Loop.over("t", ROWS // 3), Loop.over("w", COLS)],
        refs=[
            ArrayRef(table, Affine.of("t", coeff=3, const=1),
                     Affine.of("w"), is_write=True),
        ],
    )
    # OLAP: aggregate three measure columns with a predicate column.
    aggregate = LoopNest(
        name="revenue_scan",
        loops=[Loop.over("q", 3), Loop.over("r", ROWS)],
        refs=[
            ArrayRef(table, Affine.of("r"), Affine.constant(0)),
            ArrayRef(table, Affine.of("r"),
                     Affine.of("q", coeff=4, const=2)),
        ],
    )
    return Program("order_htap", [table], [inserts, aggregate])


def main() -> None:
    program = build_order_table_workload()
    print(f"HTAP order table: {ROWS} rows x {COLS} attributes, "
          f"row inserts + column aggregation\n")
    header = (f"{'design':<14} {'cycles':>10} {'mem bytes':>10} "
              f"{'row buf hits':>13} {'col buf hits':>13}")
    print(header)
    print("-" * len(header))
    results = {}
    for design in ("1P1L", "1P2L", "1P2L_SameSet", "2P2L"):
        result = run_simulation(make_system(design), program=program)
        results[design] = result
        banks = result.stats.group("memory.banks")
        print(f"{design:<14} {result.cycles:>10} "
              f"{result.memory_bytes():>10} "
              f"{banks.get('row_buffer_hits'):>13} "
              f"{banks.get('col_buffer_hits'):>13}")

    base = results["1P1L"]
    best = min(results.values(), key=lambda r: r.cycles)
    print(f"\nBest design: {best.system.name.split('@')[0]} at "
          f"{100 * (1 - best.cycles / base.cycles):.1f}% less time "
          f"than the baseline.")
    print("The column aggregation runs as column-vector accesses on "
          "the MDA designs\n(one buffer operation per 8 rows) instead "
          "of the baseline's strided scalar walk.")


if __name__ == "__main__":
    main()
