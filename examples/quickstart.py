#!/usr/bin/env python
"""Quickstart: simulate one kernel on the baseline and on MDACache.

Runs the paper's motivating kernel (sgemm, whose ``MatC[k][j]`` walk is
column-wise) through the conventional 1P1L hierarchy and the 1P2L
MDACache hierarchy, both over the same MDA main memory, and prints the
headline comparison: execution cycles, L1 hit rate, LLC traffic, and
bytes moved to/from memory.

Usage::

    python examples/quickstart.py [small|large]
"""

import sys

from repro import make_system, run_simulation


def main() -> None:
    size = sys.argv[1] if len(sys.argv) > 1 else "small"
    print(f"Simulating sgemm ({size} input) on two hierarchies...\n")

    baseline = run_simulation(make_system("1P1L"), workload="sgemm",
                              size=size)
    mdacache = run_simulation(make_system("1P2L"), workload="sgemm",
                              size=size)

    rows = [
        ("execution cycles", baseline.cycles, mdacache.cycles),
        ("memory operations", baseline.ops, mdacache.ops),
        ("L1 hit rate", f"{baseline.l1_hit_rate():.3f}",
         f"{mdacache.l1_hit_rate():.3f}"),
        ("LLC requests", baseline.llc_requests(),
         mdacache.llc_requests()),
        ("memory bytes moved", baseline.memory_bytes(),
         mdacache.memory_bytes()),
        ("memory column-buffer hits", baseline.column_buffer_hits(),
         mdacache.column_buffer_hits()),
    ]
    width = max(len(label) for label, _, _ in rows)
    print(f"{'metric':<{width}}  {'1P1L baseline':>15}  "
          f"{'1P2L MDACache':>15}")
    for label, base, mda in rows:
        print(f"{label:<{width}}  {base!s:>15}  {mda!s:>15}")

    reduction = 100 * (1 - mdacache.cycles / baseline.cycles)
    print(f"\nMDACache reduces execution time by {reduction:.1f}% "
          f"(paper Fig. 12 reports ~64-72% on the full-size setup).")


if __name__ == "__main__":
    main()
