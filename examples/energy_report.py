#!/usr/bin/env python
"""Energy accounting and machine-readable reporting.

Runs one column-affine kernel (the analytic HTAP workload) on the
baseline and on MDACache, prints each run's per-component energy
breakdown, and emits the head-to-head comparison as JSON — the
artifacts a downstream evaluation pipeline would archive.
"""

import json

from repro.core.energy import energy_of_run
from repro.core.report import comparison_to_dict, run_to_dict
from repro.core.simulator import run_simulation
from repro.core.system import make_system


def main() -> None:
    baseline = run_simulation(make_system("1P1L"), workload="htap1",
                              size="small")
    mdacache = run_simulation(make_system("1P2L"), workload="htap1",
                              size="small")

    for label, result in (("1P1L baseline", baseline),
                          ("1P2L MDACache", mdacache)):
        print(f"--- {label}: memory-system energy breakdown ---")
        print(energy_of_run(result).report())
        print()

    comparison = comparison_to_dict(baseline, mdacache)
    print("--- head-to-head (JSON) ---")
    print(json.dumps(comparison, indent=2, sort_keys=True))

    saved = 100 * (1 - comparison["energy_ratio"])
    print(f"\nMDACache saves {saved:.1f}% of memory-system energy on "
          f"this workload by replacing\nstrided row activations with "
          f"dense column accesses (paper Section III).")
    print("\nFull run records (run_to_dict) can be dumped the same "
          "way; try:\n  python -m repro run 1P2L htap1 --json")
    _ = run_to_dict  # referenced above; silences linters


if __name__ == "__main__":
    main()
