#!/usr/bin/env python
"""Matrix transpose: the canonical mixed-orientation kernel.

``B = A'`` must read one matrix along rows and write the other along
columns (or vice versa) — on a conventional hierarchy one of the two
always loses.  This example writes the kernel both ways, shows that the
compiler annotates the opposite orientations, and demonstrates that the
MDA hierarchy makes the loop-order choice nearly irrelevant — the
paper's point that MDA support can "obviate the need for some ambiguous
compiler tradeoffs" (Section I).
"""

from repro.core.simulator import run_simulation
from repro.core.system import make_system
from repro.sw.program import Affine, ArrayDecl, ArrayRef, Loop, LoopNest, Program

N = 48


def build_transpose(row_major_reads: bool) -> Program:
    a = ArrayDecl("A", N, N)
    b = ArrayDecl("B", N, N)
    if row_major_reads:
        # Innermost j: read A row-wise, write B column-wise.
        refs = [ArrayRef(a, Affine.of("i"), Affine.of("j")),
                ArrayRef(b, Affine.of("j"), Affine.of("i"),
                         is_write=True)]
        name = "transpose_read_rows"
    else:
        # Innermost j: read A column-wise, write B row-wise.
        refs = [ArrayRef(a, Affine.of("j"), Affine.of("i")),
                ArrayRef(b, Affine.of("i"), Affine.of("j"),
                         is_write=True)]
        name = "transpose_read_cols"
    nest = LoopNest(name, [Loop.over("i", N), Loop.over("j", N)], refs)
    return Program(name, [a, b], [nest])


def main() -> None:
    print(f"Transposing a {N}x{N} matrix, both loop orientations:\n")
    header = (f"{'kernel':<22} {'design':<8} {'cycles':>9} "
              f"{'mem bytes':>10}")
    print(header)
    print("-" * len(header))
    cycles = {}
    for row_major_reads in (True, False):
        program = build_transpose(row_major_reads)
        for design in ("1P1L", "1P2L"):
            result = run_simulation(make_system(design),
                                    program=program)
            cycles[(program.name, design)] = result.cycles
            print(f"{program.name:<22} {design:<8} "
                  f"{result.cycles:>9} {result.memory_bytes():>10}")

    def spread(design: str) -> float:
        a = cycles[("transpose_read_rows", design)]
        b = cycles[("transpose_read_cols", design)]
        return max(a, b) / min(a, b)

    print(f"\nLoop-order sensitivity (worse/better ratio): "
          f"1P1L {spread('1P1L'):.2f}x vs 1P2L {spread('1P2L'):.2f}x")
    print("With MDA caching both orientations cost about the same — "
          "the compiler no longer\nhas to guess the right loop order "
          "or insert an explicit transpose.")


if __name__ == "__main__":
    main()
