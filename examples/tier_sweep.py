#!/usr/bin/env python
"""Die-stacked tier sweep: cache vs flat vs hybrid below the LLC.

A miniature of the ``tier_modes`` experiment for a handful of kernels:
runs a 1P2L hierarchy with the polymorphic die-stacked tier in each of
its three personalities (tag-in-DRAM cache, flat addressable region,
50/50 hybrid) and prints normalized execution time against the same
hierarchy without a tier, plus the tier's own service counters.

Usage::

    python examples/tier_sweep.py [size] [workload ...]
"""

import sys

from repro.common.config import apply_overrides
from repro.core.simulator import run_simulation
from repro.core.system import make_system

TIER_BYTES = 2 * 1024 * 1024

MODES = (
    ("cache", {"tier.mode": "cache", "tier.size_bytes": TIER_BYTES}),
    ("flat", {"tier.mode": "flat", "tier.size_bytes": TIER_BYTES}),
    ("hybrid", {"tier.mode": "hybrid", "tier.size_bytes": TIER_BYTES,
                "tier.cache_fraction": 0.5}),
)


def main() -> None:
    size = sys.argv[1] if len(sys.argv) > 1 else "small"
    workloads = sys.argv[2:] or ["sgemm", "sobel", "jacobi2d"]
    print(f"Cycles with a 2 MiB die-stacked tier, normalized to the "
          f"tier-less 1P2L ({size} inputs), lower is better:\n")
    header = f"{'workload':<12}" + "".join(
        f"{mode:>10}" for mode, _ in MODES)
    print(header)
    print("-" * len(header))
    for workload in workloads:
        base = run_simulation(make_system("1P2L", 1.0),
                              workload=workload, size=size)
        cells = []
        for _, overrides in MODES:
            system = apply_overrides(make_system("1P2L", 1.0),
                                     overrides)
            result = run_simulation(system, workload=workload,
                                    size=size)
            cells.append(f"{result.cycles / base.cycles:>10.3f}")
        print(f"{workload:<12}" + "".join(cells))

    # One detailed service breakdown (cache mode, last workload).
    system = apply_overrides(make_system("1P2L", 1.0), MODES[0][1])
    print(f"\n{system.describe()}")
    result = run_simulation(system, workload=workloads[-1], size=size)
    tier = {name.split(".", 1)[1]: value
            for name, value in result.stats.flat().items()
            if name.startswith("tier.")}
    print(f"tier service for {workloads[-1]}: "
          f"{tier['fetches']} fetches, {tier['hits']} hits, "
          f"{tier['rbla_bypasses']} RBLA bypasses, "
          f"{tier['rbla_installs']} RBLA installs")


if __name__ == "__main__":
    main()
