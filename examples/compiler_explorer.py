#!/usr/bin/env python
"""Compiler explorer: direction analysis + vectorization on a custom kernel.

Builds the paper's Section V example nest by hand —

    for i in range(N):
        for j in range(N):          # innermost
            ... X[i][j] ...         # row-wise
            ... Y[j][i] ...         # column-wise
            ... Z[i+j][i+2] ...     # column-wise
            ... W[i][3] ...         # loop-invariant
            ... V[i][2*j] ...       # strided, not vectorizable

— and shows, per static reference, what the compiler support extracts:
the annotated orientation, whether the access is discerned, and the
vectorization class under 2-D (MDA) and 1-D (conventional) compilation.
Finally it prints the Fig. 10-style access-type mix of the resulting
trace for both compilation targets.
"""

from repro.sw.program import Affine, ArrayDecl, ArrayRef, Loop, LoopNest, Program
from repro.sw.tracegen import generate_trace, trace_mix
from repro.sw.vectorizer import compile_program

N = 24


def build_example() -> Program:
    arrays = {name: ArrayDecl(name, 2 * N + 2, 2 * N + 2)
              for name in "XYZWV"}
    refs = [
        ArrayRef(arrays["X"], Affine.of("i"), Affine.of("j")),
        ArrayRef(arrays["Y"], Affine.of("j"), Affine.of("i")),
        ArrayRef(arrays["Z"], Affine.of("i") + Affine.of("j"),
                 Affine.of("i") + 2),
        ArrayRef(arrays["W"], Affine.of("i"), Affine.constant(3)),
        ArrayRef(arrays["V"], Affine.of("i"), Affine.of("j", coeff=2)),
    ]
    nest = LoopNest("example", [Loop.over("i", N), Loop.over("j", N)],
                    refs)
    return Program("section5", list(arrays.values()), [nest])


def describe(program: Program, dims: int) -> None:
    target = "MDA (logically 2-D)" if dims == 2 else "conventional (1-D)"
    print(f"--- compiled for the {target} hierarchy ---")
    compiled = compile_program(program, dims)
    header = (f"{'reference':<16} {'orientation':<12} "
              f"{'discerned':<10} {'class':<16}")
    print(header)
    print("-" * len(header))
    for cref in compiled.nests[0].refs:
        ref = cref.ref
        name = f"{ref.array.name}[{ref.row}][{ref.col}]"
        info = cref.direction
        print(f"{name:<16} {info.orientation.name:<12} "
              f"{str(info.discerned):<10} {cref.vec_class.value:<16}")
    mix = trace_mix(generate_trace(program, dims))
    fractions = mix.fractions()
    print(f"trace mix by volume: "
          f"row scalar {fractions['row_scalar']:.2f}, "
          f"row vector {fractions['row_vector']:.2f}, "
          f"col scalar {fractions['col_scalar']:.2f}, "
          f"col vector {fractions['col_vector']:.2f}\n")


def main() -> None:
    program = build_example()
    describe(program, dims=2)
    describe(program, dims=1)
    print("Note how Y and Z vectorize along the column direction only "
          "under the MDA target,\nwhile the 1-D target serializes them "
          "into strided scalar walks (paper Section V).")


if __name__ == "__main__":
    main()
